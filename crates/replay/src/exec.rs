//! Replaying one static plan against realized spot price traces.
//!
//! Semantics, matching the paper's execution model:
//!
//! * each circle group launches at the first instant (≥ the start offset)
//!   its bid covers the spot price — "otherwise it waits";
//! * a group dies the moment the realized price exceeds its bid
//!   (out-of-bid event) — or, under fault injection, when a spot kill
//!   storm reclaims it;
//! * while alive, a group alternates `F_i` productive hours with `O_i`
//!   checkpoint overhead;
//! * the first group to finish the application wins and every other group
//!   is terminated by the user (charged per 2014 billing: partial hours
//!   charged on user termination, free on provider termination);
//! * if all groups die first, the best checkpoint across groups seeds an
//!   on-demand recovery run that starts once the last group is dead.
//!
//! [`PlanRunner::run`] replays a full plan to completion (with the
//! on-demand fallback); [`PlanRunner::run_window`] replays at most one
//! optimization window and reports the intermediate state, which is what
//! the Algorithm-1 adaptive runner consumes. Both take an
//! [`ExecContext`] bundling the trace recorder, the optional
//! [`FaultInjector`], and the [`RetryPolicy`] for checkpoint I/O — all
//! no-ops by default, in which case the replay is bit-identical to the
//! pre-resilience executor.
//!
//! # Fault semantics
//!
//! * **Kill storms** terminate a group like an out-of-bid event
//!   (provider termination: the partial hour is free) at the earliest
//!   storm that reclaims the group.
//! * **Checkpoint upload failures** cost the overhead `O_i` per failed
//!   attempt plus the retry policy's deterministic backoff; when the
//!   policy is exhausted the group degrades to running *without*
//!   checkpoints — it keeps executing, but only previously banked
//!   checkpoints survive a later kill, and the final coordinated
//!   checkpoint at a user stop is also lost.
//! * **Latency spikes** add hours to the affected upload.
//! * **Restore corruption** hits the on-demand recovery: the best
//!   checkpoint reads corrupt and recovery falls back one checkpoint
//!   interval (`WindowOutcome::ckpt_step_fraction`).

use crate::batch::BatchTables;
use crate::{Hours, Usd};
use ec2_market::billing::{BillingModel, Termination};
use ec2_market::fault::{FaultInjector, RetryPolicy};
use ec2_market::market::{CircleGroupId, SpotMarket};
use serde::{Deserialize, Serialize};
use sompi_core::error::SompiError;
use sompi_core::model::{CircleGroup, GroupDecision, Plan};
use sompi_obs::{emit, Event, NullRecorder, Recorder, TraceLevel};

/// How Monte-Carlo replay resolves launch/death crossings — the PR-10
/// ablation toggle, mirroring the PR-8 `KernelMode`.
///
/// Both modes produce bit-identical [`RunOutcome`]s (enforced by the
/// `mc_batch_differential` suite); `Batched` is the faster default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Per-replica scalar trace walks (the pre-batching executor).
    Scalar,
    /// Scenario-major execution: [`MonteCarlo::run_plan`](crate::MonteCarlo::run_plan)
    /// precomputes one shared [`BatchTables`] per (plan, market) and every
    /// replica resolves crossings with O(1) table reads.
    #[default]
    Batched,
}

/// Everything an executor call may consult besides the plan and the
/// market: the trace recorder, an optional fault injector, the retry
/// policy for faulted checkpoint I/O and relaunches, and the batched
/// replay state.
/// [`ExecContext::default`] is all no-ops — replays under it are
/// bit-identical to the pre-resilience executor.
#[derive(Clone, Copy)]
pub struct ExecContext<'a> {
    /// Trace event sink.
    pub recorder: &'a dyn Recorder,
    /// Fault oracle; `None` injects nothing.
    pub faults: Option<&'a FaultInjector>,
    /// Retry/backoff policy for faulted operations (checkpoint uploads,
    /// relaunch pacing). The default [`RetryPolicy::none`] never waits.
    pub retry: RetryPolicy,
    /// Requested execution mode. Only [`MonteCarlo::run_plan`](crate::MonteCarlo::run_plan)
    /// consults this (to decide whether to warm [`BatchTables`]); the
    /// executors themselves key off `batch` being present.
    pub mode: ExecMode,
    /// Precomputed death-time tables for the plan being replayed. `None`
    /// replays through scalar trace queries; the answers are bit-identical
    /// either way.
    pub batch: Option<&'a BatchTables>,
}

impl Default for ExecContext<'_> {
    fn default() -> Self {
        Self {
            recorder: &NullRecorder,
            faults: None,
            retry: RetryPolicy::none(),
            mode: ExecMode::default(),
            batch: None,
        }
    }
}

impl<'a> ExecContext<'a> {
    /// All-no-op context (same as [`ExecContext::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record trace events into `recorder`.
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Inject faults from `faults`.
    pub fn with_faults(mut self, faults: &'a FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Retry faulted operations under `retry`.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Select the execution mode (the `--no-batch-replay` ablation sets
    /// [`ExecMode::Scalar`]).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replay against precomputed batch tables.
    pub fn with_batch(mut self, batch: &'a BatchTables) -> Self {
        self.batch = Some(batch);
        self
    }
}

/// Who completed the application in a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Finisher {
    /// A circle group finished on spot.
    Spot(CircleGroupId),
    /// The on-demand fallback finished the job.
    OnDemand,
}

/// Outcome of replaying one plan from one start offset to completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Total realized cost, USD.
    pub total_cost: Usd,
    /// Spot share of the cost.
    pub spot_cost: Usd,
    /// On-demand share of the cost.
    pub od_cost: Usd,
    /// Wall-clock duration from the start offset to completion, hours.
    pub wall_hours: Hours,
    /// Who finished the job.
    pub finisher: Finisher,
    /// Number of circle groups terminated by out-of-bid events.
    pub groups_failed: u32,
    /// Whether the plan's deadline was met.
    pub met_deadline: bool,
}

/// State after replaying (at most) one window of a plan — no on-demand
/// fallback applied yet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowOutcome {
    /// Spot cost accrued in the window, USD.
    pub spot_cost: Usd,
    /// Wall hours consumed (from the window start to completion, last
    /// death, or window cutoff — whichever ended the window).
    pub elapsed: Hours,
    /// Application fraction completed *and durable* at window end: the
    /// full target fraction on completion, else the best checkpoint.
    pub saved_fraction: f64,
    /// Which group completed, if any.
    pub completed_by: Option<CircleGroupId>,
    /// Out-of-bid terminations in the window.
    pub groups_failed: u32,
    /// Application fraction one banked checkpoint of the best surviving
    /// group represents — how much a corrupt restore falls back by.
    /// Defaults to 0 for outcomes recorded before fault injection.
    #[serde(default)]
    pub ckpt_step_fraction: f64,
}

/// Lifecycle of one group within a window.
struct GroupRun {
    launch: Option<Hours>,
    end: Hours,
    termination: Termination,
    completed: bool,
    /// Fraction of the full application durably saved by this group.
    saved_fraction: f64,
    /// Durable checkpoints behind `saved_fraction` (interval checkpoints,
    /// plus the final coordinated one on a user stop). Trace-event detail.
    ckpts: u32,
    /// Trace hour at which the last durable checkpoint finished.
    ckpt_at: Hours,
    /// Application fraction one banked interval checkpoint represents.
    step_fraction: f64,
    /// Buffered fault events `(at_hours, event)`, settled in phase 2
    /// (only events at or before the group's charge end are real).
    events: Vec<(Hours, Event)>,
}

/// Replays static plans against a market's realized traces.
#[derive(Debug, Clone, Copy)]
pub struct PlanRunner<'a> {
    market: &'a SpotMarket,
    billing: BillingModel,
    /// Deadline used for `met_deadline`, hours from the start offset.
    pub deadline: Hours,
}

impl<'a> PlanRunner<'a> {
    /// Create a runner with 2014 hourly billing.
    pub fn new(market: &'a SpotMarket, deadline: Hours) -> Self {
        Self {
            market,
            billing: BillingModel::hourly(),
            deadline,
        }
    }

    /// Override the billing model.
    pub fn with_billing(mut self, billing: BillingModel) -> Self {
        self.billing = billing;
        self
    }

    /// The billing model in use.
    pub fn billing(&self) -> BillingModel {
        self.billing
    }

    /// Replay `plan` (the full application) starting at trace offset
    /// `start`, falling back to on-demand recovery if all replicas die.
    ///
    /// Spot execution is cut off at the deadline: no operator lets a
    /// replica wait out a week-long price plateau while the deadline burns
    /// (Algorithm 1 line 7's "run on on-demand" applies). The on-demand
    /// recovery then completes the job — late runs are still completed,
    /// just flagged as missing the deadline.
    ///
    /// Emits the failure/checkpoint/fallback timeline to the context's
    /// recorder: `GroupFailed`, `CheckpointTaken`, and fault events from
    /// the window replay, one `OnDemandFallback` if spot did not finish,
    /// and a final `RunCompleted`. All `at_hours` are on the market-trace
    /// clock (the same clock as `start`).
    ///
    /// Errors with [`SompiError::UnknownGroup`] when the plan references
    /// a circle group the market has no trace for.
    pub fn run(
        &self,
        plan: &Plan,
        start: Hours,
        ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, SompiError> {
        let w = self.run_window(plan, start, 1.0, Some(self.deadline), false, ctx)?;
        let out = self.finish_with_od(plan, w, 1.0, start, ctx);
        // A planned pure-on-demand run is not a *fallback*; only emit one
        // when spot groups existed and did not finish.
        if w.completed_by.is_none() && !plan.groups.is_empty() {
            emit(ctx.recorder, TraceLevel::Summary, || {
                Event::OnDemandFallback {
                    at_hours: start + w.elapsed,
                    remaining_fraction: (1.0 - w.saved_fraction).max(0.0),
                    od_hours: out.wall_hours - w.elapsed,
                    od_cost: out.od_cost,
                    reason: "all-groups-failed".to_string(),
                }
            });
        }
        emit(ctx.recorder, TraceLevel::Summary, || Event::RunCompleted {
            finisher: match out.finisher {
                Finisher::Spot(id) => format!("spot:{id}"),
                Finisher::OnDemand => "on-demand".to_string(),
            },
            total_cost: out.total_cost,
            spot_cost: out.spot_cost,
            od_cost: out.od_cost,
            wall_hours: out.wall_hours,
            met_deadline: out.met_deadline,
            groups_failed: out.groups_failed,
            windows: None,
            plan_changes: None,
        });
        Ok(out)
    }

    /// Convert a window outcome into a completed run by applying the
    /// on-demand fallback for whatever fraction remains of `target`.
    /// `start` is the trace offset the window began at (it anchors fault
    /// event timestamps). Under an injector with restore corruption, the
    /// recovery may find the best checkpoint corrupt and fall back one
    /// checkpoint interval (re-executing the lost slice on demand).
    pub fn finish_with_od(
        &self,
        plan: &Plan,
        w: WindowOutcome,
        target: f64,
        start: Hours,
        ctx: &ExecContext<'_>,
    ) -> RunOutcome {
        let (finisher, od_cost, od_hours) = match w.completed_by {
            Some(id) => (Finisher::Spot(id), 0.0, 0.0),
            None => {
                let od = &plan.on_demand;
                let mut saved = w.saved_fraction;
                let mut remaining = (target - saved).max(0.0);
                if remaining > 0.0 && saved > 0.0 {
                    if let Some(inj) = ctx.faults {
                        // One restore per recovery, keyed by the saved
                        // state so distinct recoveries draw independently.
                        if inj.restore_corrupted((saved * 1e9) as u64, 0) {
                            let lost = w.ckpt_step_fraction.min(saved).max(0.0);
                            saved -= lost;
                            remaining = (target - saved).max(0.0);
                            let at = start + w.elapsed;
                            emit(ctx.recorder, TraceLevel::Summary, || Event::FaultInjected {
                                class: "restore-corruption".to_string(),
                                group: None,
                                at_hours: at,
                                detail: lost,
                            });
                            emit(ctx.recorder, TraceLevel::Summary, || Event::DegradedMode {
                                mode: "previous-checkpoint".to_string(),
                                group: None,
                                at_hours: at,
                                reason: "restore-corruption".to_string(),
                            });
                        }
                    }
                }
                let mut hours = od.exec_hours * remaining;
                if remaining > 0.0 && saved > 0.0 {
                    hours += od.recovery_hours; // restore a checkpoint
                } else if remaining > 0.0 && !plan.groups.is_empty() {
                    hours += od.recovery_hours; // reprovision after failures
                }
                let cost = self
                    .billing
                    .on_demand_cost(od.unit_price, hours, od.instances);
                (Finisher::OnDemand, cost, hours)
            }
        };
        let wall = w.elapsed + od_hours;
        RunOutcome {
            total_cost: w.spot_cost + od_cost,
            spot_cost: w.spot_cost,
            od_cost,
            wall_hours: wall,
            finisher,
            groups_failed: w.groups_failed,
            met_deadline: wall <= self.deadline,
        }
    }

    /// Replay at most `window` hours (None = unbounded) of `plan` on
    /// `fraction` of the application, starting at trace offset `start`.
    /// With `carried = true` the groups are *already running* at `start`
    /// (an adaptive window boundary where healthy instances were kept):
    /// no launch wait is paid, even if the instantaneous price is above
    /// the bid — the instances only die when the price actually exceeds
    /// it. Returns the intermediate state; no on-demand fallback is
    /// applied. `GroupFailed` (Summary), `CheckpointTaken` (Detail), and
    /// fault events are emitted once per-group lifecycles are settled —
    /// i.e. after the winner rule classifies each termination.
    ///
    /// Errors with [`SompiError::InvalidFraction`] for a `fraction`
    /// outside `(0, 1]` and [`SompiError::UnknownGroup`] for a plan group
    /// the market has no trace for.
    pub fn run_window(
        &self,
        plan: &Plan,
        start: Hours,
        fraction: f64,
        window: Option<Hours>,
        carried: bool,
        ctx: &ExecContext<'_>,
    ) -> Result<WindowOutcome, SompiError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(SompiError::InvalidFraction { fraction });
        }
        let cutoff = window.map(|w| start + w).unwrap_or(f64::INFINITY);

        // Phase 1: per-group lifecycle ignoring the winner rule.
        let mut runs: Vec<GroupRun> = Vec::with_capacity(plan.groups.len());
        for (i, (group, decision)) in plan.groups.iter().enumerate() {
            let query = self
                .market
                .query(group.id)
                .ok_or_else(|| SompiError::UnknownGroup {
                    group: group.id.to_string(),
                })?;
            let trace = query.trace();
            // Batched replay: the shared death-time table for this
            // (group, bid), when the context carries one. Every lookup
            // below is bit-identical to the scalar query — the table is
            // the same arithmetic with the trace scan hoisted out.
            let entry = ctx.batch.and_then(|b| b.entry(i, group.id, decision.bid));

            // Launch: wait until the price is at or below the bid —
            // unless the group was carried over already running. The query
            // walks the trace index (O(log n)) when indexing is enabled,
            // and the boundary-search fallback otherwise; both return the
            // same launch times bit for bit. A batch table answers in O(1).
            let launch = if carried {
                Some(start)
            } else if let Some(e) = entry {
                e.table.launch_time(start, cutoff)
            } else {
                query.launch_time(start, decision.bid, cutoff)
            };
            let Some(launch_t) = launch else {
                runs.push(GroupRun {
                    launch: None,
                    end: cutoff.min(trace.duration()).max(start),
                    termination: Termination::Provider,
                    completed: false,
                    saved_fraction: 0.0,
                    ckpts: 0,
                    ckpt_at: start,
                    step_fraction: 0.0,
                    events: Vec::new(),
                });
                continue;
            };

            // Death: first passage above the bid after launch — or an
            // injected kill storm, whichever reclaims the group first.
            let price_death = match entry {
                Some(e) => e.table.first_passage_above(launch_t),
                None => query.first_passage_above(launch_t, decision.bid),
            }
            .unwrap_or(f64::INFINITY);
            let storm_death = ctx
                .faults
                .and_then(|f| match entry {
                    Some(e) => f.storm_kill_after_keyed(e.gkey, launch_t),
                    None => f.storm_kill_after(group.id, launch_t),
                })
                .unwrap_or(f64::INFINITY);
            let storm_killed = storm_death < price_death;
            let death = price_death.min(storm_death);

            let io_faults = ctx
                .faults
                .is_some_and(|f| f.plan().ckpt_fail_prob > 0.0 || f.plan().ckpt_latency_prob > 0.0);
            let mut run = if io_faults {
                walk_group(
                    group,
                    decision,
                    ctx.faults.expect("io_faults implies injector"),
                    &ctx.retry,
                    fraction,
                    launch_t,
                    death,
                    cutoff,
                    entry.map(|e| e.gkey),
                )
            } else {
                closed_form_group(group, decision, fraction, launch_t, death, cutoff)
            };
            if storm_killed && run.end >= storm_death && run.termination == Termination::Provider {
                run.events.push((
                    storm_death,
                    Event::FaultInjected {
                        class: "spot-kill-storm".to_string(),
                        group: Some(group.id.to_string()),
                        at_hours: storm_death,
                        detail: 0.0,
                    },
                ));
            }
            runs.push(run);
        }

        // Phase 2: winner rule — earliest completion terminates the rest.
        let winner = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.completed)
            .min_by(|a, b| a.1.end.total_cmp(&b.1.end));

        let mut spot_cost = 0.0;
        let mut groups_failed = 0u32;
        let recorder = ctx.recorder;

        let outcome = match winner {
            Some((wi, w)) => {
                let w_end = w.end;
                for (i, (group, _)) in plan.groups.iter().enumerate() {
                    let r = &runs[i];
                    let Some(launch) = r.launch else { continue };
                    let ended_before_winner = r.end <= w_end && i != wi;
                    let (term, charge_end) = if ended_before_winner {
                        (r.termination, r.end)
                    } else {
                        (Termination::User, w_end)
                    };
                    for (at, e) in &r.events {
                        if *at <= charge_end {
                            emit(recorder, e.level(), || e.clone());
                        }
                    }
                    if ended_before_winner && r.termination == Termination::Provider {
                        groups_failed += 1;
                        emit(recorder, TraceLevel::Summary, || Event::GroupFailed {
                            group: group.id.to_string(),
                            at_hours: r.end,
                            saved_fraction: r.saved_fraction,
                        });
                    }
                    let trace = self.market.trace(group.id).expect("checked above");
                    spot_cost += self.billing.spot_cost(
                        trace,
                        launch,
                        charge_end.max(launch),
                        term,
                        group.instances,
                    );
                }
                WindowOutcome {
                    spot_cost,
                    elapsed: w_end - start,
                    saved_fraction: fraction,
                    completed_by: Some(plan.groups[wi].0.id),
                    groups_failed,
                    ckpt_step_fraction: 0.0,
                }
            }
            None => {
                let mut last_end = start;
                let mut best = 0.0f64;
                let mut best_step = 0.0f64;
                for (i, (group, _)) in plan.groups.iter().enumerate() {
                    let r = &runs[i];
                    if let Some(launch) = r.launch {
                        let trace = self.market.trace(group.id).expect("checked above");
                        spot_cost += self.billing.spot_cost(
                            trace,
                            launch,
                            r.end.max(launch),
                            r.termination,
                            group.instances,
                        );
                        for (_, e) in &r.events {
                            emit(recorder, e.level(), || e.clone());
                        }
                        if r.saved_fraction > 0.0 {
                            emit(recorder, TraceLevel::Detail, || Event::CheckpointTaken {
                                group: group.id.to_string(),
                                at_hours: r.ckpt_at,
                                count: r.ckpts,
                                saved_fraction: r.saved_fraction,
                            });
                        }
                        if r.termination == Termination::Provider {
                            groups_failed += 1;
                            emit(recorder, TraceLevel::Summary, || Event::GroupFailed {
                                group: group.id.to_string(),
                                at_hours: r.end,
                                saved_fraction: r.saved_fraction,
                            });
                        }
                    }
                    last_end = last_end.max(r.end);
                    if r.saved_fraction > best {
                        best = r.saved_fraction;
                        best_step = r.step_fraction;
                    }
                }
                WindowOutcome {
                    spot_cost,
                    elapsed: last_end - start,
                    saved_fraction: best,
                    completed_by: None,
                    groups_failed,
                    ckpt_step_fraction: best_step,
                }
            }
        };
        Ok(outcome)
    }
}

/// The fault-free lifecycle in closed form — the paper's execution model,
/// bit-identical to the pre-resilience executor (a storm-truncated
/// `death` composes transparently: a storm kill is just an earlier
/// provider termination).
fn closed_form_group(
    group: &CircleGroup,
    decision: &GroupDecision,
    fraction: f64,
    launch_t: Hours,
    death: Hours,
    cutoff: Hours,
) -> GroupRun {
    let exec = group.exec_hours * fraction;
    let interval = decision.ckpt_interval.min(group.exec_hours);
    let ckpt_on = interval < exec;
    let o = group.ckpt_overhead_hours;
    let step_fraction = step_fraction(group, decision, fraction);

    let n_ckpt = if ckpt_on {
        (exec / interval).floor()
    } else {
        0.0
    };
    let completion = launch_t + exec + o * n_ckpt;

    if completion <= death && completion <= cutoff {
        return GroupRun {
            launch: Some(launch_t),
            end: completion,
            termination: Termination::User,
            completed: true,
            saved_fraction: fraction,
            ckpts: n_ckpt as u32,
            ckpt_at: completion,
            step_fraction,
            events: Vec::new(),
        };
    }
    let end = death.min(cutoff);
    let alive = (end - launch_t).max(0.0);
    let killed_by_provider = death <= cutoff;
    let (saved_hours, ckpts, ckpt_at) = if killed_by_provider {
        // Out-of-bid: only completed checkpoints survive.
        if ckpt_on {
            let cycle = interval + o;
            let c = (alive / cycle).floor();
            ((c * interval).min(exec), c as u32, launch_t + c * cycle)
        } else {
            (0.0, 0, end)
        }
    } else {
        // Window/deadline expiry is a *user* stop: the runtime takes a
        // final coordinated checkpoint before releasing the instances
        // (Algorithm 1 line 22, "checkpointing the final state of the
        // application as the next start point"), so all productive
        // progress is durable. That final checkpoint counts as one more
        // durable one.
        if ckpt_on {
            let cycle = interval + o;
            let c = (alive / cycle).floor();
            (
                (c * interval + (alive - c * cycle).min(interval)).min(exec),
                c as u32 + 1,
                end,
            )
        } else {
            (alive.min(exec), 1, end)
        }
    };
    GroupRun {
        launch: Some(launch_t),
        end,
        termination: if killed_by_provider {
            Termination::Provider
        } else {
            Termination::User
        },
        completed: false,
        saved_fraction: if exec > 0.0 {
            fraction * saved_hours / exec
        } else {
            fraction
        },
        ckpts,
        ckpt_at,
        step_fraction,
        events: Vec::new(),
    }
}

/// Application fraction one banked interval checkpoint represents.
fn step_fraction(group: &CircleGroup, decision: &GroupDecision, fraction: f64) -> f64 {
    let exec = group.exec_hours * fraction;
    let interval = decision.ckpt_interval.min(group.exec_hours);
    if exec > 0.0 && interval < exec {
        fraction * interval / exec
    } else {
        fraction
    }
}

/// The lifecycle under active checkpoint-I/O faults, walked one
/// checkpoint cycle at a time. Coincides with [`closed_form_group`] when
/// no fault fires. Deterministic: every fault decision is a pure hash of
/// the injector seed and the (group, checkpoint ordinal, attempt)
/// coordinates, and the walk visits checkpoints in time order.
#[allow(clippy::too_many_arguments)]
fn walk_group(
    group: &CircleGroup,
    decision: &GroupDecision,
    injector: &FaultInjector,
    retry: &RetryPolicy,
    fraction: f64,
    launch_t: Hours,
    death: Hours,
    cutoff: Hours,
    gkey: Option<u64>,
) -> GroupRun {
    let exec = group.exec_hours * fraction;
    let interval = decision.ckpt_interval.min(group.exec_hours);
    let ckpt_on = interval < exec;
    let o = group.ckpt_overhead_hours;
    let stop = death.min(cutoff);
    let user_stop = cutoff < death;
    let gid = group.id.to_string();
    // The fault-draw key: cached in the batch entry (computed once per
    // plan), or derived here on the scalar path — the same hash either
    // way, so every draw below is identical across modes.
    let gkey = gkey.unwrap_or_else(|| ec2_market::fault::group_key(group.id));

    let mut t = launch_t;
    let mut done: Hours = 0.0; // productive hours completed
    let mut saved: Hours = 0.0; // productive hours durable in checkpoints
    let mut ckpts = 0u32;
    let mut ckpt_at = launch_t;
    let mut degraded = false;
    let mut ordinal = 0u32;
    let mut events: Vec<(Hours, Event)> = Vec::new();

    // Bank whatever a user stop can make durable: the final coordinated
    // checkpoint saves all productive progress — unless checkpoint
    // storage was lost, or the final upload itself fails every attempt.
    let finish_user_stop = |done: Hours,
                            saved: &mut Hours,
                            ckpts: &mut u32,
                            ckpt_at: &mut Hours,
                            ordinal: u32,
                            degraded: bool,
                            events: &mut Vec<(Hours, Event)>| {
        if degraded {
            return;
        }
        let slot = ordinal + 1;
        let mut banked = true;
        for attempt in 1..=retry.max_attempts.max(1) {
            if injector.ckpt_upload_fails_keyed(gkey, slot, attempt) {
                events.push((
                    stop,
                    Event::FaultInjected {
                        class: "ckpt-upload-failure".to_string(),
                        group: Some(gid.clone()),
                        at_hours: stop,
                        detail: slot as f64,
                    },
                ));
                let last = attempt == retry.max_attempts.max(1);
                events.push((
                    stop,
                    Event::RetryAttempted {
                        op: "ckpt-upload".to_string(),
                        group: gid.clone(),
                        at_hours: stop,
                        attempt,
                        backoff_hours: 0.0,
                        gave_up: last,
                    },
                ));
                if last {
                    banked = false;
                }
            } else {
                break;
            }
        }
        if banked && done > *saved {
            *saved = done;
            *ckpts += 1;
            *ckpt_at = stop;
        }
    };

    loop {
        let run_left = (exec - done).max(0.0);
        if !ckpt_on || degraded {
            // No (more) checkpoints: straight run to completion.
            let completion = t + run_left;
            if completion <= stop {
                return GroupRun {
                    launch: Some(launch_t),
                    end: completion,
                    termination: Termination::User,
                    completed: true,
                    saved_fraction: fraction,
                    ckpts,
                    ckpt_at: completion,
                    step_fraction: step_fraction(group, decision, fraction),
                    events,
                };
            }
            let done_at_stop = done + (stop - t).max(0.0).min(run_left);
            if user_stop {
                finish_user_stop(
                    done_at_stop,
                    &mut saved,
                    &mut ckpts,
                    &mut ckpt_at,
                    ordinal,
                    degraded,
                    &mut events,
                );
            }
            break;
        }

        let seg = interval.min(run_left);
        let seg_end = t + seg;
        if seg_end > stop {
            // Died or stopped mid-segment.
            let done_at_stop = done + (stop - t).max(0.0).min(seg);
            if user_stop {
                finish_user_stop(
                    done_at_stop,
                    &mut saved,
                    &mut ckpts,
                    &mut ckpt_at,
                    ordinal,
                    degraded,
                    &mut events,
                );
            }
            break;
        }
        done += seg;
        t = seg_end;
        if seg < interval - 1e-12 {
            // Partial tail segment: the application completes without a
            // trailing checkpoint (matches the closed form's
            // ⌊exec/interval⌋ checkpoints).
            return GroupRun {
                launch: Some(launch_t),
                end: t,
                termination: Termination::User,
                completed: true,
                saved_fraction: fraction,
                ckpts,
                ckpt_at,
                step_fraction: step_fraction(group, decision, fraction),
                events,
            };
        }

        // A full interval completed: take checkpoint `ordinal`.
        ordinal += 1;
        let latency = injector.ckpt_latency_spike_keyed(gkey, ordinal);
        let mut interrupted = false;
        for attempt in 1..=retry.max_attempts.max(1) {
            let mut upload = o;
            if attempt == 1 {
                if let Some(extra) = latency {
                    upload += extra;
                    events.push((
                        t,
                        Event::FaultInjected {
                            class: "ckpt-latency-spike".to_string(),
                            group: Some(gid.clone()),
                            at_hours: t,
                            detail: extra,
                        },
                    ));
                }
            }
            let finish = t + upload;
            if finish > stop {
                // Killed or stopped during the upload: not durable.
                interrupted = true;
                break;
            }
            t = finish;
            if !injector.ckpt_upload_fails_keyed(gkey, ordinal, attempt) {
                saved = done;
                ckpts += 1;
                ckpt_at = t;
                break;
            }
            events.push((
                t,
                Event::FaultInjected {
                    class: "ckpt-upload-failure".to_string(),
                    group: Some(gid.clone()),
                    at_hours: t,
                    detail: ordinal as f64,
                },
            ));
            if attempt < retry.max_attempts.max(1) {
                let backoff =
                    retry.backoff_hours(injector.plan().seed, gkey ^ ordinal as u64, attempt);
                events.push((
                    t,
                    Event::RetryAttempted {
                        op: "ckpt-upload".to_string(),
                        group: gid.clone(),
                        at_hours: t,
                        attempt,
                        backoff_hours: backoff,
                        gave_up: false,
                    },
                ));
                t += backoff;
                if t > stop {
                    interrupted = true;
                    break;
                }
            } else {
                events.push((
                    t,
                    Event::RetryAttempted {
                        op: "ckpt-upload".to_string(),
                        group: gid.clone(),
                        at_hours: t,
                        attempt,
                        backoff_hours: 0.0,
                        gave_up: true,
                    },
                ));
                events.push((
                    t,
                    Event::DegradedMode {
                        mode: "no-checkpoint".to_string(),
                        group: Some(gid.clone()),
                        at_hours: t,
                        reason: "ckpt-upload-retries-exhausted".to_string(),
                    },
                ));
                degraded = true;
            }
        }
        if interrupted {
            if user_stop {
                finish_user_stop(
                    done,
                    &mut saved,
                    &mut ckpts,
                    &mut ckpt_at,
                    ordinal,
                    degraded,
                    &mut events,
                );
            }
            break;
        }
        if done >= exec - 1e-12 {
            // The final interval landed exactly on completion: done.
            return GroupRun {
                launch: Some(launch_t),
                end: t,
                termination: Termination::User,
                completed: true,
                saved_fraction: fraction,
                ckpts,
                ckpt_at: t,
                step_fraction: step_fraction(group, decision, fraction),
                events,
            };
        }
    }

    GroupRun {
        launch: Some(launch_t),
        end: stop,
        termination: if user_stop {
            Termination::User
        } else {
            Termination::Provider
        },
        completed: false,
        saved_fraction: if exec > 0.0 {
            fraction * saved.min(exec) / exec
        } else {
            fraction
        },
        ckpts,
        ckpt_at,
        step_fraction: step_fraction(group, decision, fraction),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::fault::FaultPlan;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::trace::SpotTrace;
    use ec2_market::zone::AvailabilityZone;
    use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};

    /// One-type market with a hand-written trace for exact assertions.
    fn tiny_market(prices: &[f64]) -> (SpotMarket, CircleGroupId) {
        let cat = InstanceCatalog::paper_2014();
        let ty = cat.by_name("m1.small").unwrap();
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let mut m = SpotMarket::new(cat);
        m.insert(id, SpotTrace::new(1.0, prices.to_vec()));
        (m, id)
    }

    fn group(id: CircleGroupId, t: Hours) -> CircleGroup {
        CircleGroup {
            id,
            instances: 2,
            exec_hours: t,
            ckpt_overhead_hours: 0.0,
            recovery_hours: 0.5,
        }
    }

    fn od() -> OnDemandOption {
        OnDemandOption {
            instance_type: InstanceTypeId(4),
            instances: 1,
            exec_hours: 4.0,
            unit_price: 2.0,
            recovery_hours: 0.5,
        }
    }

    fn run(m: &SpotMarket, deadline: Hours, plan: &Plan, start: Hours) -> RunOutcome {
        PlanRunner::new(m, deadline)
            .run(plan, start, &ExecContext::new())
            .unwrap()
    }

    #[test]
    fn calm_trace_completes_on_spot() {
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 3.0,
                },
            )],
            on_demand: od(),
        };
        let out = run(&m, 5.0, &plan, 0.0);
        assert_eq!(out.finisher, Finisher::Spot(id));
        assert_eq!(out.groups_failed, 0);
        assert!((out.wall_hours - 3.0).abs() < 1e-9);
        // 3 whole hours at $0.1 × 2 instances.
        assert!((out.spot_cost - 0.6).abs() < 1e-9);
        assert_eq!(out.od_cost, 0.0);
        assert!(out.met_deadline);
    }

    #[test]
    fn out_of_bid_without_checkpoints_falls_to_od_full_rerun() {
        // Price spikes above the bid at hour 2; 3-hour job, no checkpoints.
        let (m, id) = tiny_market(&[0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 3.0,
                },
            )],
            on_demand: od(),
        };
        let out = run(&m, 10.0, &plan, 0.0);
        assert_eq!(out.finisher, Finisher::OnDemand);
        assert_eq!(out.groups_failed, 1);
        // Provider termination at hour 2: 2 whole hours charged.
        assert!((out.spot_cost - 0.1 * 2.0 * 2.0).abs() < 1e-9);
        // OD reruns everything: 4 h + 0.5 recovery = 4.5 → ceil 5 h × $2.
        assert!((out.od_cost - 10.0).abs() < 1e-9);
        assert!((out.wall_hours - (2.0 + 4.5)).abs() < 1e-9);
    }

    #[test]
    fn checkpoints_shrink_od_rerun() {
        let (m, id) = tiny_market(&[0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let g = group(id, 3.0); // zero-overhead checkpoints for exactness
        let plan = Plan {
            groups: vec![(
                g,
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        let out = run(&m, 10.0, &plan, 0.0);
        // Died at hour 2 with 2 checkpoints → 2/3 of app saved.
        // OD runs 4 × (1/3) + 0.5 = 1.833 → ceil 2 h × $2 = $4.
        assert_eq!(out.finisher, Finisher::OnDemand);
        assert!((out.od_cost - 4.0).abs() < 1e-9, "od {}", out.od_cost);
    }

    #[test]
    fn waits_for_launch_when_price_above_bid() {
        // Price starts high, drops at hour 2.
        let (m, id) = tiny_market(&[9.0, 9.0, 0.1, 0.1, 0.1, 0.1]);
        let plan = Plan {
            groups: vec![(
                group(id, 2.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 2.0,
                },
            )],
            on_demand: od(),
        };
        let out = run(&m, 10.0, &plan, 0.0);
        assert_eq!(out.finisher, Finisher::Spot(id));
        // Launched at 2, done at 4 → wall 4 from start.
        assert!((out.wall_hours - 4.0).abs() < 1e-9);
        // Charged 2 hours only.
        assert!((out.spot_cost - 0.1 * 2.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn never_launches_goes_straight_od() {
        let (m, id) = tiny_market(&[9.0; 6]);
        let plan = Plan {
            groups: vec![(
                group(id, 2.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 2.0,
                },
            )],
            on_demand: od(),
        };
        let out = run(&m, 20.0, &plan, 0.0);
        assert_eq!(out.finisher, Finisher::OnDemand);
        assert_eq!(out.spot_cost, 0.0);
        assert!(out.od_cost > 0.0);
    }

    #[test]
    fn winner_kills_slower_replica_and_pays_partial_hour() {
        let cat = InstanceCatalog::paper_2014();
        let small = cat.by_name("m1.small").unwrap();
        let id_a = CircleGroupId::new(small, AvailabilityZone::UsEast1a);
        let id_b = CircleGroupId::new(small, AvailabilityZone::UsEast1b);
        let mut m = SpotMarket::new(cat);
        m.insert(id_a, SpotTrace::new(1.0, vec![0.1; 24]));
        m.insert(id_b, SpotTrace::new(1.0, vec![0.05; 24]));
        let plan = Plan {
            groups: vec![
                (
                    group(id_a, 2.5),
                    GroupDecision {
                        bid: 0.2,
                        ckpt_interval: 2.5,
                    },
                ),
                (
                    group(id_b, 8.0),
                    GroupDecision {
                        bid: 0.2,
                        ckpt_interval: 8.0,
                    },
                ),
            ],
            on_demand: od(),
        };
        let out = run(&m, 10.0, &plan, 0.0);
        assert_eq!(out.finisher, Finisher::Spot(id_a));
        assert!((out.wall_hours - 2.5).abs() < 1e-9);
        // Both groups user-terminated at 2.5 → 3 hours charged each.
        let expect = 0.1 * 3.0 * 2.0 + 0.05 * 3.0 * 2.0;
        assert!((out.spot_cost - expect).abs() < 1e-9, "{}", out.spot_cost);
    }

    #[test]
    fn pure_od_plan_runs_on_demand_from_scratch() {
        let (m, _) = tiny_market(&[0.1; 6]);
        let plan = Plan {
            groups: vec![],
            on_demand: od(),
        };
        let out = run(&m, 10.0, &plan, 0.0);
        assert_eq!(out.finisher, Finisher::OnDemand);
        // Full rerun, no recovery (nothing to restore), 4 h × $2.
        assert!((out.od_cost - 8.0).abs() < 1e-9, "od {}", out.od_cost);
        assert!((out.wall_hours - 4.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_flag_reflects_wall_clock() {
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 3.0,
                },
            )],
            on_demand: od(),
        };
        assert!(run(&m, 3.5, &plan, 0.0).met_deadline);
        assert!(!run(&m, 2.5, &plan, 0.0).met_deadline);
    }

    #[test]
    fn window_cutoff_reports_intermediate_state() {
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 6.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        let w = PlanRunner::new(&m, 100.0)
            .run_window(&plan, 0.0, 1.0, Some(2.0), false, &ExecContext::new())
            .unwrap();
        assert!(w.completed_by.is_none());
        assert_eq!(w.groups_failed, 0);
        // Two checkpoints at zero overhead → 2/6 saved.
        assert!((w.saved_fraction - 2.0 / 6.0).abs() < 1e-9);
        assert!((w.elapsed - 2.0).abs() < 1e-9);
        // User termination at window end: 2 whole hours charged.
        assert!((w.spot_cost - 0.1 * 2.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn residual_fraction_scales_execution() {
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 6.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 6.0,
                },
            )],
            on_demand: od(),
        };
        // Half the app: 3 hours.
        let w = PlanRunner::new(&m, 100.0)
            .run_window(&plan, 0.0, 0.5, None, false, &ExecContext::new())
            .unwrap();
        assert_eq!(w.completed_by, Some(id));
        assert!((w.elapsed - 3.0).abs() < 1e-9);
        assert!((w.saved_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bad_inputs_are_errors_not_panics() {
        let (m, id) = tiny_market(&[0.1; 6]);
        let plan = Plan {
            groups: vec![(
                group(id, 2.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 2.0,
                },
            )],
            on_demand: od(),
        };
        let r = PlanRunner::new(&m, 10.0);
        assert!(matches!(
            r.run_window(&plan, 0.0, 0.0, None, false, &ExecContext::new()),
            Err(SompiError::InvalidFraction { .. })
        ));
        // A plan group the market has never heard of.
        let ghost = CircleGroupId::new(
            m.catalog().by_name("m1.small").unwrap(),
            AvailabilityZone::UsEast1c,
        );
        let bad = Plan {
            groups: vec![(
                group(ghost, 2.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 2.0,
                },
            )],
            on_demand: od(),
        };
        assert!(matches!(
            r.run(&bad, 0.0, &ExecContext::new()),
            Err(SompiError::UnknownGroup { .. })
        ));
    }

    #[test]
    fn quiet_injector_is_bit_identical_to_no_injector() {
        let (m, id) = tiny_market(&[0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        let inj = FaultInjector::new(FaultPlan::quiet(), 100.0);
        let r = PlanRunner::new(&m, 10.0);
        let plain = r.run(&plan, 0.0, &ExecContext::new()).unwrap();
        let faulted = r
            .run(&plan, 0.0, &ExecContext::new().with_faults(&inj))
            .unwrap();
        assert_eq!(plain, faulted);
    }

    #[test]
    fn storm_kills_group_the_price_trace_would_spare() {
        // Calm trace: without faults the 3-hour job completes on spot.
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        // A dense storm stream with certain membership: the first storm
        // after launch kills the group.
        let inj = FaultInjector::new(
            FaultPlan {
                seed: 17,
                storm_rate_per_hour: 1.0,
                storm_group_prob: 1.0,
                ..FaultPlan::quiet()
            },
            24.0,
        );
        let first_storm = inj.storms()[0].at_hours;
        let out = PlanRunner::new(&m, 10.0)
            .run(&plan, 0.0, &ExecContext::new().with_faults(&inj))
            .unwrap();
        assert_eq!(out.finisher, Finisher::OnDemand, "storm must kill spot");
        assert_eq!(out.groups_failed, 1);
        // The group died exactly at the first storm; with zero-overhead
        // hourly checkpoints it banked floor(first_storm) of 3 hours.
        let banked = (first_storm.floor().min(3.0) / 3.0_f64).min(1.0);
        let remaining = 1.0 - banked;
        let od_hours = 4.0 * remaining + 0.5;
        assert!(
            (out.wall_hours - (first_storm + od_hours)).abs() < 1e-9,
            "wall {} vs storm {first_storm}",
            out.wall_hours
        );
    }

    #[test]
    fn exhausted_ckpt_retries_degrade_to_no_checkpoint() {
        // Certain upload failure: every checkpoint attempt fails, so the
        // group degrades and banks nothing — but still completes (the
        // kill never comes) and still wins the window.
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        let inj = FaultInjector::new(
            FaultPlan {
                seed: 3,
                ckpt_fail_prob: 1.0,
                ..FaultPlan::quiet()
            },
            24.0,
        );
        let out = PlanRunner::new(&m, 10.0)
            .run(&plan, 0.0, &ExecContext::new().with_faults(&inj))
            .unwrap();
        // Zero checkpoint overhead: completion time unchanged.
        assert_eq!(out.finisher, Finisher::Spot(id));
        assert!((out.wall_hours - 3.0).abs() < 1e-9);

        // Same faults, but the price kills the group at hour 2: nothing
        // was banked, so on-demand reruns the whole job.
        let (m2, id2) = tiny_market(&[0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let plan2 = Plan {
            groups: vec![(
                group(id2, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        let out2 = PlanRunner::new(&m2, 10.0)
            .run(&plan2, 0.0, &ExecContext::new().with_faults(&inj))
            .unwrap();
        assert_eq!(out2.finisher, Finisher::OnDemand);
        // Full rerun: 4 h + 0.5 recovery (reprovision) = 4.5 → $10.
        assert!((out2.od_cost - 10.0).abs() < 1e-9, "od {}", out2.od_cost);
    }

    #[test]
    fn restore_corruption_falls_back_one_checkpoint() {
        // Group dies at hour 2 with 2 of 3 hourly checkpoints banked.
        let (m, id) = tiny_market(&[0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        let inj = FaultInjector::new(
            FaultPlan {
                seed: 1,
                restore_corrupt_prob: 1.0,
                ..FaultPlan::quiet()
            },
            24.0,
        );
        let r = PlanRunner::new(&m, 10.0);
        let clean = r.run(&plan, 0.0, &ExecContext::new()).unwrap();
        let corrupt = r
            .run(&plan, 0.0, &ExecContext::new().with_faults(&inj))
            .unwrap();
        // Clean: 2/3 saved → OD 4/3 h + 0.5 = 1.83 → $4.
        // Corrupt: falls back to 1/3 saved → OD 8/3 h + 0.5 = 3.17 → $8.
        assert!((clean.od_cost - 4.0).abs() < 1e-9);
        assert!(
            (corrupt.od_cost - 8.0).abs() < 1e-9,
            "od {}",
            corrupt.od_cost
        );
        assert!(corrupt.total_cost > clean.total_cost);
    }
}
