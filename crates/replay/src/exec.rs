//! Replaying one static plan against realized spot price traces.
//!
//! Semantics, matching the paper's execution model:
//!
//! * each circle group launches at the first instant (≥ the start offset)
//!   its bid covers the spot price — "otherwise it waits";
//! * a group dies the moment the realized price exceeds its bid
//!   (out-of-bid event);
//! * while alive, a group alternates `F_i` productive hours with `O_i`
//!   checkpoint overhead;
//! * the first group to finish the application wins and every other group
//!   is terminated by the user (charged per 2014 billing: partial hours
//!   charged on user termination, free on provider termination);
//! * if all groups die first, the best checkpoint across groups seeds an
//!   on-demand recovery run that starts once the last group is dead.
//!
//! [`PlanRunner::run`] replays a full plan to completion (with the
//! on-demand fallback); [`PlanRunner::run_window`] replays at most one
//! optimization window and reports the intermediate state, which is what
//! the Algorithm-1 adaptive runner consumes.

use crate::{Hours, Usd};
use ec2_market::billing::{BillingModel, Termination};
use ec2_market::market::{CircleGroupId, SpotMarket};
use serde::{Deserialize, Serialize};
use sompi_core::model::Plan;
use sompi_obs::{emit, Event, NullRecorder, Recorder, TraceLevel};

/// Who completed the application in a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Finisher {
    /// A circle group finished on spot.
    Spot(CircleGroupId),
    /// The on-demand fallback finished the job.
    OnDemand,
}

/// Outcome of replaying one plan from one start offset to completion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Total realized cost, USD.
    pub total_cost: Usd,
    /// Spot share of the cost.
    pub spot_cost: Usd,
    /// On-demand share of the cost.
    pub od_cost: Usd,
    /// Wall-clock duration from the start offset to completion, hours.
    pub wall_hours: Hours,
    /// Who finished the job.
    pub finisher: Finisher,
    /// Number of circle groups terminated by out-of-bid events.
    pub groups_failed: u32,
    /// Whether the plan's deadline was met.
    pub met_deadline: bool,
}

/// State after replaying (at most) one window of a plan — no on-demand
/// fallback applied yet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowOutcome {
    /// Spot cost accrued in the window, USD.
    pub spot_cost: Usd,
    /// Wall hours consumed (from the window start to completion, last
    /// death, or window cutoff — whichever ended the window).
    pub elapsed: Hours,
    /// Application fraction completed *and durable* at window end: the
    /// full target fraction on completion, else the best checkpoint.
    pub saved_fraction: f64,
    /// Which group completed, if any.
    pub completed_by: Option<CircleGroupId>,
    /// Out-of-bid terminations in the window.
    pub groups_failed: u32,
}

/// Lifecycle of one group within a window.
#[derive(Debug, Clone, Copy)]
struct GroupRun {
    launch: Option<Hours>,
    end: Hours,
    termination: Termination,
    completed: bool,
    /// Fraction of the full application durably saved by this group.
    saved_fraction: f64,
    /// Durable checkpoints behind `saved_fraction` (interval checkpoints,
    /// plus the final coordinated one on a user stop). Trace-event detail.
    ckpts: u32,
    /// Trace hour at which the last durable checkpoint finished.
    ckpt_at: Hours,
}

/// Replays static plans against a market's realized traces.
#[derive(Debug, Clone, Copy)]
pub struct PlanRunner<'a> {
    market: &'a SpotMarket,
    billing: BillingModel,
    /// Deadline used for `met_deadline`, hours from the start offset.
    pub deadline: Hours,
}

impl<'a> PlanRunner<'a> {
    /// Create a runner with 2014 hourly billing.
    pub fn new(market: &'a SpotMarket, deadline: Hours) -> Self {
        Self {
            market,
            billing: BillingModel::hourly(),
            deadline,
        }
    }

    /// Override the billing model.
    pub fn with_billing(mut self, billing: BillingModel) -> Self {
        self.billing = billing;
        self
    }

    /// The billing model in use.
    pub fn billing(&self) -> BillingModel {
        self.billing
    }

    /// Replay `plan` (the full application) starting at trace offset
    /// `start`, falling back to on-demand recovery if all replicas die.
    ///
    /// Spot execution is cut off at the deadline: no operator lets a
    /// replica wait out a week-long price plateau while the deadline burns
    /// (Algorithm 1 line 7's "run on on-demand" applies). The on-demand
    /// recovery then completes the job — late runs are still completed,
    /// just flagged as missing the deadline.
    pub fn run(&self, plan: &Plan, start: Hours) -> RunOutcome {
        self.run_recorded(plan, start, &NullRecorder)
    }

    /// [`PlanRunner::run`], emitting the failure/checkpoint/fallback
    /// timeline to `recorder`: `GroupFailed` and `CheckpointTaken` events
    /// from the window replay, one `OnDemandFallback` if spot did not
    /// finish, and a final `RunCompleted`. All `at_hours` are on the
    /// market-trace clock (the same clock as `start`).
    pub fn run_recorded(&self, plan: &Plan, start: Hours, recorder: &dyn Recorder) -> RunOutcome {
        let w = self.run_window_carried_recorded(
            plan,
            start,
            1.0,
            Some(self.deadline),
            false,
            recorder,
        );
        let out = self.finish_with_od(plan, w, 1.0);
        // A planned pure-on-demand run is not a *fallback*; only emit one
        // when spot groups existed and did not finish.
        if w.completed_by.is_none() && !plan.groups.is_empty() {
            emit(recorder, TraceLevel::Summary, || Event::OnDemandFallback {
                at_hours: start + w.elapsed,
                remaining_fraction: (1.0 - w.saved_fraction).max(0.0),
                od_hours: out.wall_hours - w.elapsed,
                od_cost: out.od_cost,
                reason: "all-groups-failed".to_string(),
            });
        }
        emit(recorder, TraceLevel::Summary, || Event::RunCompleted {
            finisher: match out.finisher {
                Finisher::Spot(id) => format!("spot:{id}"),
                Finisher::OnDemand => "on-demand".to_string(),
            },
            total_cost: out.total_cost,
            spot_cost: out.spot_cost,
            od_cost: out.od_cost,
            wall_hours: out.wall_hours,
            met_deadline: out.met_deadline,
            groups_failed: out.groups_failed,
            windows: None,
            plan_changes: None,
        });
        out
    }

    /// Convert a window outcome into a completed run by applying the
    /// on-demand fallback for whatever fraction remains of `target`.
    pub fn finish_with_od(&self, plan: &Plan, w: WindowOutcome, target: f64) -> RunOutcome {
        let (finisher, od_cost, od_hours) = match w.completed_by {
            Some(id) => (Finisher::Spot(id), 0.0, 0.0),
            None => {
                let od = &plan.on_demand;
                let remaining = (target - w.saved_fraction).max(0.0);
                let mut hours = od.exec_hours * remaining;
                if remaining > 0.0 && w.saved_fraction > 0.0 {
                    hours += od.recovery_hours; // restore a checkpoint
                } else if remaining > 0.0 && !plan.groups.is_empty() {
                    hours += od.recovery_hours; // reprovision after failures
                }
                let cost = self
                    .billing
                    .on_demand_cost(od.unit_price, hours, od.instances);
                (Finisher::OnDemand, cost, hours)
            }
        };
        let wall = w.elapsed + od_hours;
        RunOutcome {
            total_cost: w.spot_cost + od_cost,
            spot_cost: w.spot_cost,
            od_cost,
            wall_hours: wall,
            finisher,
            groups_failed: w.groups_failed,
            met_deadline: wall <= self.deadline,
        }
    }

    /// Replay at most `window` hours (None = unbounded) of `plan` on
    /// `fraction` of the application, starting at trace offset `start`.
    /// Returns the intermediate state; no on-demand fallback is applied.
    pub fn run_window(
        &self,
        plan: &Plan,
        start: Hours,
        fraction: f64,
        window: Option<Hours>,
    ) -> WindowOutcome {
        self.run_window_carried(plan, start, fraction, window, false)
    }

    /// Like [`PlanRunner::run_window`], but with `carried = true` the
    /// groups are *already running* at `start` (an adaptive window
    /// boundary where healthy instances were kept): no launch wait is
    /// paid, even if the instantaneous price is above the bid — the
    /// instances only die when the price actually exceeds it.
    pub fn run_window_carried(
        &self,
        plan: &Plan,
        start: Hours,
        fraction: f64,
        window: Option<Hours>,
        carried: bool,
    ) -> WindowOutcome {
        self.run_window_carried_recorded(plan, start, fraction, window, carried, &NullRecorder)
    }

    /// [`PlanRunner::run_window_carried`], emitting `GroupFailed` (Summary)
    /// and `CheckpointTaken` (Detail) events once per-group lifecycles are
    /// settled — i.e. after the winner rule classifies each termination.
    pub fn run_window_carried_recorded(
        &self,
        plan: &Plan,
        start: Hours,
        fraction: f64,
        window: Option<Hours>,
        carried: bool,
        recorder: &dyn Recorder,
    ) -> WindowOutcome {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0,1]"
        );
        let cutoff = window.map(|w| start + w).unwrap_or(f64::INFINITY);

        // Phase 1: per-group lifecycle ignoring the winner rule.
        let mut runs: Vec<GroupRun> = Vec::with_capacity(plan.groups.len());
        for (group, decision) in &plan.groups {
            let trace = self
                .market
                .trace(group.id)
                .unwrap_or_else(|| panic!("no trace for {}", group.id));
            let exec = group.exec_hours * fraction;
            let interval = decision.ckpt_interval.min(group.exec_hours);
            let ckpt_on = interval < exec;
            let o = group.ckpt_overhead_hours;

            // Launch: wait until the price is at or below the bid —
            // unless the group was carried over already running.
            let mut launch = None;
            if carried {
                launch = Some(start);
            } else {
                let mut t = start;
                while t < cutoff && t < trace.duration() {
                    if trace.price_at(t) <= decision.bid {
                        launch = Some(t);
                        break;
                    }
                    t += trace.step_hours();
                }
            }
            let Some(launch_t) = launch else {
                runs.push(GroupRun {
                    launch: None,
                    end: cutoff.min(trace.duration()).max(start),
                    termination: Termination::Provider,
                    completed: false,
                    saved_fraction: 0.0,
                    ckpts: 0,
                    ckpt_at: start,
                });
                continue;
            };

            // Death: first passage above the bid after launch.
            let death = trace
                .first_passage_above(launch_t, decision.bid)
                .unwrap_or(f64::INFINITY);

            // Completion wall time on this group.
            let n_ckpt = if ckpt_on {
                (exec / interval).floor()
            } else {
                0.0
            };
            let completion = launch_t + exec + o * n_ckpt;

            if completion <= death && completion <= cutoff {
                runs.push(GroupRun {
                    launch,
                    end: completion,
                    termination: Termination::User,
                    completed: true,
                    saved_fraction: fraction,
                    ckpts: n_ckpt as u32,
                    ckpt_at: completion,
                });
            } else {
                let end = death.min(cutoff);
                let alive = (end - launch_t).max(0.0);
                let killed_by_provider = death <= cutoff;
                let (saved_hours, ckpts, ckpt_at) = if killed_by_provider {
                    // Out-of-bid: only completed checkpoints survive.
                    if ckpt_on {
                        let cycle = interval + o;
                        let c = (alive / cycle).floor();
                        ((c * interval).min(exec), c as u32, launch_t + c * cycle)
                    } else {
                        (0.0, 0, end)
                    }
                } else {
                    // Window/deadline expiry is a *user* stop: the runtime
                    // takes a final coordinated checkpoint before releasing
                    // the instances (Algorithm 1 line 22, "checkpointing
                    // the final state of the application as the next start
                    // point"), so all productive progress is durable. That
                    // final checkpoint counts as one more durable one.
                    if ckpt_on {
                        let cycle = interval + o;
                        let c = (alive / cycle).floor();
                        (
                            (c * interval + (alive - c * cycle).min(interval)).min(exec),
                            c as u32 + 1,
                            end,
                        )
                    } else {
                        (alive.min(exec), 1, end)
                    }
                };
                runs.push(GroupRun {
                    launch,
                    end,
                    termination: if killed_by_provider {
                        Termination::Provider
                    } else {
                        Termination::User
                    },
                    completed: false,
                    saved_fraction: if exec > 0.0 {
                        fraction * saved_hours / exec
                    } else {
                        fraction
                    },
                    ckpts,
                    ckpt_at,
                });
            }
        }

        // Phase 2: winner rule — earliest completion terminates the rest.
        let winner = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.completed)
            .min_by(|a, b| a.1.end.total_cmp(&b.1.end));

        let mut spot_cost = 0.0;
        let mut groups_failed = 0u32;

        match winner {
            Some((wi, w)) => {
                let w_end = w.end;
                for (i, (group, _)) in plan.groups.iter().enumerate() {
                    let r = &runs[i];
                    let Some(launch) = r.launch else { continue };
                    let ended_before_winner = r.end <= w_end && i != wi;
                    let (term, charge_end) = if ended_before_winner {
                        (r.termination, r.end)
                    } else {
                        (Termination::User, w_end)
                    };
                    if ended_before_winner && r.termination == Termination::Provider {
                        groups_failed += 1;
                        emit(recorder, TraceLevel::Summary, || Event::GroupFailed {
                            group: group.id.to_string(),
                            at_hours: r.end,
                            saved_fraction: r.saved_fraction,
                        });
                    }
                    let trace = self.market.trace(group.id).expect("checked above");
                    spot_cost += self.billing.spot_cost(
                        trace,
                        launch,
                        charge_end.max(launch),
                        term,
                        group.instances,
                    );
                }
                WindowOutcome {
                    spot_cost,
                    elapsed: w_end - start,
                    saved_fraction: fraction,
                    completed_by: Some(plan.groups[wi].0.id),
                    groups_failed,
                }
            }
            None => {
                let mut last_end = start;
                let mut best = 0.0f64;
                for (i, (group, _)) in plan.groups.iter().enumerate() {
                    let r = &runs[i];
                    if let Some(launch) = r.launch {
                        let trace = self.market.trace(group.id).expect("checked above");
                        spot_cost += self.billing.spot_cost(
                            trace,
                            launch,
                            r.end.max(launch),
                            r.termination,
                            group.instances,
                        );
                        if r.saved_fraction > 0.0 {
                            emit(recorder, TraceLevel::Detail, || Event::CheckpointTaken {
                                group: group.id.to_string(),
                                at_hours: r.ckpt_at,
                                count: r.ckpts,
                                saved_fraction: r.saved_fraction,
                            });
                        }
                        if r.termination == Termination::Provider {
                            groups_failed += 1;
                            emit(recorder, TraceLevel::Summary, || Event::GroupFailed {
                                group: group.id.to_string(),
                                at_hours: r.end,
                                saved_fraction: r.saved_fraction,
                            });
                        }
                    }
                    last_end = last_end.max(r.end);
                    best = best.max(r.saved_fraction);
                }
                WindowOutcome {
                    spot_cost,
                    elapsed: last_end - start,
                    saved_fraction: best,
                    completed_by: None,
                    groups_failed,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::trace::SpotTrace;
    use ec2_market::zone::AvailabilityZone;
    use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};

    /// One-type market with a hand-written trace for exact assertions.
    fn tiny_market(prices: &[f64]) -> (SpotMarket, CircleGroupId) {
        let cat = InstanceCatalog::paper_2014();
        let ty = cat.by_name("m1.small").unwrap();
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let mut m = SpotMarket::new(cat);
        m.insert(id, SpotTrace::new(1.0, prices.to_vec()));
        (m, id)
    }

    fn group(id: CircleGroupId, t: Hours) -> CircleGroup {
        CircleGroup {
            id,
            instances: 2,
            exec_hours: t,
            ckpt_overhead_hours: 0.0,
            recovery_hours: 0.5,
        }
    }

    fn od() -> OnDemandOption {
        OnDemandOption {
            instance_type: InstanceTypeId(4),
            instances: 1,
            exec_hours: 4.0,
            unit_price: 2.0,
            recovery_hours: 0.5,
        }
    }

    #[test]
    fn calm_trace_completes_on_spot() {
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 3.0,
                },
            )],
            on_demand: od(),
        };
        let out = PlanRunner::new(&m, 5.0).run(&plan, 0.0);
        assert_eq!(out.finisher, Finisher::Spot(id));
        assert_eq!(out.groups_failed, 0);
        assert!((out.wall_hours - 3.0).abs() < 1e-9);
        // 3 whole hours at $0.1 × 2 instances.
        assert!((out.spot_cost - 0.6).abs() < 1e-9);
        assert_eq!(out.od_cost, 0.0);
        assert!(out.met_deadline);
    }

    #[test]
    fn out_of_bid_without_checkpoints_falls_to_od_full_rerun() {
        // Price spikes above the bid at hour 2; 3-hour job, no checkpoints.
        let (m, id) = tiny_market(&[0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 3.0,
                },
            )],
            on_demand: od(),
        };
        let out = PlanRunner::new(&m, 10.0).run(&plan, 0.0);
        assert_eq!(out.finisher, Finisher::OnDemand);
        assert_eq!(out.groups_failed, 1);
        // Provider termination at hour 2: 2 whole hours charged.
        assert!((out.spot_cost - 0.1 * 2.0 * 2.0).abs() < 1e-9);
        // OD reruns everything: 4 h + 0.5 recovery = 4.5 → ceil 5 h × $2.
        assert!((out.od_cost - 10.0).abs() < 1e-9);
        assert!((out.wall_hours - (2.0 + 4.5)).abs() < 1e-9);
    }

    #[test]
    fn checkpoints_shrink_od_rerun() {
        let (m, id) = tiny_market(&[0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let g = group(id, 3.0); // zero-overhead checkpoints for exactness
        let plan = Plan {
            groups: vec![(
                g,
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        let out = PlanRunner::new(&m, 10.0).run(&plan, 0.0);
        // Died at hour 2 with 2 checkpoints → 2/3 of app saved.
        // OD runs 4 × (1/3) + 0.5 = 1.833 → ceil 2 h × $2 = $4.
        assert_eq!(out.finisher, Finisher::OnDemand);
        assert!((out.od_cost - 4.0).abs() < 1e-9, "od {}", out.od_cost);
    }

    #[test]
    fn waits_for_launch_when_price_above_bid() {
        // Price starts high, drops at hour 2.
        let (m, id) = tiny_market(&[9.0, 9.0, 0.1, 0.1, 0.1, 0.1]);
        let plan = Plan {
            groups: vec![(
                group(id, 2.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 2.0,
                },
            )],
            on_demand: od(),
        };
        let out = PlanRunner::new(&m, 10.0).run(&plan, 0.0);
        assert_eq!(out.finisher, Finisher::Spot(id));
        // Launched at 2, done at 4 → wall 4 from start.
        assert!((out.wall_hours - 4.0).abs() < 1e-9);
        // Charged 2 hours only.
        assert!((out.spot_cost - 0.1 * 2.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn never_launches_goes_straight_od() {
        let (m, id) = tiny_market(&[9.0; 6]);
        let plan = Plan {
            groups: vec![(
                group(id, 2.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 2.0,
                },
            )],
            on_demand: od(),
        };
        let out = PlanRunner::new(&m, 20.0).run(&plan, 0.0);
        assert_eq!(out.finisher, Finisher::OnDemand);
        assert_eq!(out.spot_cost, 0.0);
        assert!(out.od_cost > 0.0);
    }

    #[test]
    fn winner_kills_slower_replica_and_pays_partial_hour() {
        let cat = InstanceCatalog::paper_2014();
        let small = cat.by_name("m1.small").unwrap();
        let id_a = CircleGroupId::new(small, AvailabilityZone::UsEast1a);
        let id_b = CircleGroupId::new(small, AvailabilityZone::UsEast1b);
        let mut m = SpotMarket::new(cat);
        m.insert(id_a, SpotTrace::new(1.0, vec![0.1; 24]));
        m.insert(id_b, SpotTrace::new(1.0, vec![0.05; 24]));
        let plan = Plan {
            groups: vec![
                (
                    group(id_a, 2.5),
                    GroupDecision {
                        bid: 0.2,
                        ckpt_interval: 2.5,
                    },
                ),
                (
                    group(id_b, 8.0),
                    GroupDecision {
                        bid: 0.2,
                        ckpt_interval: 8.0,
                    },
                ),
            ],
            on_demand: od(),
        };
        let out = PlanRunner::new(&m, 10.0).run(&plan, 0.0);
        assert_eq!(out.finisher, Finisher::Spot(id_a));
        assert!((out.wall_hours - 2.5).abs() < 1e-9);
        // Both groups user-terminated at 2.5 → 3 hours charged each.
        let expect = 0.1 * 3.0 * 2.0 + 0.05 * 3.0 * 2.0;
        assert!((out.spot_cost - expect).abs() < 1e-9, "{}", out.spot_cost);
    }

    #[test]
    fn pure_od_plan_runs_on_demand_from_scratch() {
        let (m, _) = tiny_market(&[0.1; 6]);
        let plan = Plan {
            groups: vec![],
            on_demand: od(),
        };
        let out = PlanRunner::new(&m, 10.0).run(&plan, 0.0);
        assert_eq!(out.finisher, Finisher::OnDemand);
        // Full rerun, no recovery (nothing to restore), 4 h × $2.
        assert!((out.od_cost - 8.0).abs() < 1e-9, "od {}", out.od_cost);
        assert!((out.wall_hours - 4.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_flag_reflects_wall_clock() {
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 3.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 3.0,
                },
            )],
            on_demand: od(),
        };
        assert!(PlanRunner::new(&m, 3.5).run(&plan, 0.0).met_deadline);
        assert!(!PlanRunner::new(&m, 2.5).run(&plan, 0.0).met_deadline);
    }

    #[test]
    fn window_cutoff_reports_intermediate_state() {
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 6.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 1.0,
                },
            )],
            on_demand: od(),
        };
        let w = PlanRunner::new(&m, 100.0).run_window(&plan, 0.0, 1.0, Some(2.0));
        assert!(w.completed_by.is_none());
        assert_eq!(w.groups_failed, 0);
        // Two checkpoints at zero overhead → 2/6 saved.
        assert!((w.saved_fraction - 2.0 / 6.0).abs() < 1e-9);
        assert!((w.elapsed - 2.0).abs() < 1e-9);
        // User termination at window end: 2 whole hours charged.
        assert!((w.spot_cost - 0.1 * 2.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn residual_fraction_scales_execution() {
        let (m, id) = tiny_market(&[0.1; 24]);
        let plan = Plan {
            groups: vec![(
                group(id, 6.0),
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: 6.0,
                },
            )],
            on_demand: od(),
        };
        // Half the app: 3 hours.
        let w = PlanRunner::new(&m, 100.0).run_window(&plan, 0.0, 0.5, None);
        assert_eq!(w.completed_by, Some(id));
        assert!((w.elapsed - 3.0).abs() < 1e-9);
        assert!((w.saved_fraction - 0.5).abs() < 1e-9);
    }
}
