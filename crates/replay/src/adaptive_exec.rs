//! Windowed Algorithm-1 execution against realized traces.
//!
//! [`AdaptiveRunner`] drives the paper's adaptive loop: at every window
//! boundary it rebuilds the market view from the most recent
//! `history_hours` of prices *ending at the current trace time*, asks
//! [`AdaptivePlanner`] for the residual plan, and replays at most `T_m`
//! hours of it. Durable progress (the best checkpoint across circle
//! groups, stored on S3) carries across windows. Setting
//! `update_maintenance = false` reproduces the w/o-MT ablation: the plan
//! computed in the first window is reused verbatim forever.

use crate::exec::{ExecContext, Finisher, PlanRunner, RunOutcome};
use crate::Hours;
use ec2_market::market::SpotMarket;
use serde::{Deserialize, Serialize};
use sompi_core::adaptive::{
    AdaptiveConfig, AdaptivePlanner, PlanCache, PlanContext, WindowDecision,
};
use sompi_core::baselines::Sompi;
use sompi_core::error::SompiError;
use sompi_core::policy::{KillObservation, Policy, WindowObservation};
use sompi_core::problem::Problem;
use sompi_core::view::MarketView;
use sompi_core::warmstart::WarmStart;
use sompi_obs::{emit, Event, Recorder, TraceLevel};
use std::fmt;

/// Outcome of one adaptive execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// The completed-run outcome (cost, wall time, deadline flag).
    pub run: RunOutcome,
    /// Number of optimization windows executed.
    pub windows: u32,
    /// Number of times the plan changed between consecutive windows.
    pub plan_changes: u32,
}

/// Emit the `RunCompleted` event for a finished adaptive run.
fn emit_run_completed(recorder: &dyn Recorder, out: &RunOutcome, windows: u32, plan_changes: u32) {
    emit(recorder, TraceLevel::Summary, || Event::RunCompleted {
        finisher: match out.finisher {
            Finisher::Spot(id) => format!("spot:{id}"),
            Finisher::OnDemand => "on-demand".to_string(),
        },
        total_cost: out.total_cost,
        spot_cost: out.spot_cost,
        od_cost: out.od_cost,
        wall_hours: out.wall_hours,
        met_deadline: out.met_deadline,
        groups_failed: out.groups_failed,
        windows: Some(windows),
        plan_changes: Some(plan_changes),
    });
}

/// Replays the adaptive algorithm against a market.
#[derive(Clone)]
pub struct AdaptiveRunner<'a> {
    market: &'a SpotMarket,
    planner: AdaptivePlanner,
    /// Re-plan each window (true = SOMPI, false = the w/o-MT ablation).
    pub update_maintenance: bool,
    /// The policy driving re-planning and kill/window reactions. `None`
    /// means `Sompi { config: planner.config.optimizer }` — the
    /// historical behavior, bit-for-bit.
    policy: Option<&'a dyn Policy>,
}

impl fmt::Debug for AdaptiveRunner<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveRunner")
            .field("planner", &self.planner)
            .field("update_maintenance", &self.update_maintenance)
            .field(
                "policy",
                &self.policy.map(|p| p.name()).unwrap_or("<default: SOMPI>"),
            )
            .finish_non_exhaustive()
    }
}

impl<'a> AdaptiveRunner<'a> {
    /// Create a runner.
    pub fn new(market: &'a SpotMarket, config: AdaptiveConfig) -> Self {
        Self {
            market,
            planner: AdaptivePlanner::new(config),
            update_maintenance: true,
            policy: None,
        }
    }

    /// Disable update maintenance (the w/o-MT ablation).
    pub fn without_maintenance(mut self) -> Self {
        self.update_maintenance = false;
        self
    }

    /// Drive the loop with `policy` instead of the default SOMPI
    /// optimizer: its [`Policy::plan`] re-plans each window's residual,
    /// and its [`Policy::on_window`]/[`Policy::on_kill`] hooks decide
    /// when to re-plan and what carried state a kill invalidates. With
    /// `Sompi { config }` this is exactly [`AdaptiveRunner::new`]'s
    /// behavior.
    pub fn with_policy(mut self, policy: &'a dyn Policy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Execute `problem` starting at trace offset `start` (the planner
    /// sees only prices before `start` at the first window), narrating
    /// the windowed loop to the context's recorder: a `WindowReplanned`
    /// per window boundary (with the inner optimizer's search events on
    /// real re-plans, or `reused: true` under plan continuity / w/o-MT),
    /// the replay's `GroupFailed`/`CheckpointTaken` timeline, an
    /// `OnDemandFallback` when the loop abandons spot, and a final
    /// `RunCompleted` carrying the window/plan-change tallies.
    ///
    /// Under a fault injector, market-feed gaps degrade gracefully: a
    /// gapped window re-plans against the last valid market view (the
    /// one from the most recent un-gapped window) instead of fresh
    /// prices, emitting `FaultInjected`/`DegradedMode` — and the planner
    /// itself prefers the cached plan over re-searching a stale view.
    pub fn run(
        &self,
        problem: &Problem,
        start: Hours,
        ctx: &ExecContext<'_>,
    ) -> Result<AdaptiveOutcome, SompiError> {
        let recorder = ctx.recorder;
        let cfg = self.planner.config;
        let default_policy = Sompi {
            config: cfg.optimizer,
        };
        let policy: &dyn Policy = self.policy.unwrap_or(&default_policy);
        let runner = PlanRunner::new(self.market, problem.deadline);

        let mut elapsed: Hours = 0.0;
        let mut done_fraction: f64 = 0.0;
        let mut spot_cost = 0.0;
        let mut windows = 0u32;
        let mut plan_changes = 0u32;
        let mut current_plan: Option<sompi_core::model::Plan> = None;
        // Last computed plan together with the residual fraction it was
        // sized for — reused (rescaled) by plan continuity and by the
        // w/o-MT ablation.
        let mut frozen_full: Option<(sompi_core::model::Plan, f64)> = None;
        // Fraction the current full-scale plan was made for (continuity
        // rescaling) and whether the last window demands a re-plan.
        let mut replan_needed = true;
        let mut groups_failed = 0u32;
        // Fingerprint cache for adaptive-window plan reuse: when the
        // market view is (within tolerance) the one a previous window
        // planned against, the planner skips the two-level search and
        // rescales the cached plan instead.
        let mut cache = PlanCache::default();
        // Warm-start state threaded through every real re-optimization:
        // the previous window's plan seeds the next search's incumbent
        // bound (and hot-first subset order), and per-(group, bid) bucket
        // tables are reused while a group's history digest is unchanged.
        // Exactness-preserving, so replayed outcomes are bit-identical
        // with it on or off; the config's `warmstart`/`bucket_reuse`
        // toggles ablate the layers individually.
        let mut warm = WarmStart::new();
        // Coordinates (history start, length) of the last market view
        // built from a healthy feed — what a gapped window falls back to.
        let mut last_view: Option<(Hours, Hours)> = None;

        loop {
            let remaining = 1.0 - done_fraction;
            if remaining <= 1e-9 {
                // Finished on spot.
                let run = RunOutcome {
                    total_cost: spot_cost,
                    spot_cost,
                    od_cost: 0.0,
                    wall_hours: elapsed,
                    finisher: Finisher::Spot(
                        current_plan
                            .as_ref()
                            .and_then(|p| p.groups.first().map(|(g, _)| g.id))
                            .expect("completed on spot implies a spot plan"),
                    ),
                    groups_failed,
                    met_deadline: elapsed <= problem.deadline,
                };
                emit_run_completed(recorder, &run, windows, plan_changes);
                return Ok(AdaptiveOutcome {
                    run,
                    windows,
                    plan_changes,
                });
            }

            let now = start + elapsed;
            let history_start = (now - cfg.history_hours).max(0.0);
            let fresh = (
                history_start,
                (now - history_start).max(cfg.window_hours.min(1.0)),
            );
            // Feed gap: the price feed for this window is missing or
            // stale. Re-plan against the last valid view instead of the
            // gapped one; on the very first window there is nothing older
            // to fall back to and the gapped view is used best-effort.
            let gap = ctx.faults.is_some_and(|f| f.feed_gap_at(windows));
            let (vh, vl) = if gap {
                emit(recorder, TraceLevel::Summary, || Event::FaultInjected {
                    class: "feed-gap".to_string(),
                    group: None,
                    at_hours: now,
                    detail: windows as f64,
                });
                if let Some(prev) = last_view {
                    emit(recorder, TraceLevel::Summary, || Event::DegradedMode {
                        mode: "stale-market-view".to_string(),
                        group: None,
                        at_hours: now,
                        reason: "feed-gap".to_string(),
                    });
                    prev
                } else {
                    fresh
                }
            } else {
                last_view = Some(fresh);
                fresh
            };
            let view = MarketView::from_market(self.market, vh, vl);

            // Deadline guard (Algorithm 1 line 7, applied on every path
            // including the frozen w/o-MT one — it is deadline
            // enforcement, not update maintenance): switch to on-demand
            // when the deadline "could not be satisfied" any other way —
            // i.e. when even the fastest *spot* completion of the residual
            // no longer fits, and on-demand still (barely) does. While a
            // spot plan can still make the deadline, keep gambling: that
            // is the whole premise of the hybrid execution.
            let leftover = problem.deadline - elapsed;
            let fastest = problem.try_baseline()?;
            let od_needed = fastest.exec_hours * remaining + fastest.recovery_hours;
            let spot_needed = problem
                .candidates
                .iter()
                .map(|c| c.exec_hours * remaining)
                .fold(f64::INFINITY, f64::min);
            if od_needed >= leftover && spot_needed >= leftover {
                let mut od = *fastest;
                od.exec_hours *= remaining;
                let mut hours = od.exec_hours;
                if done_fraction > 0.0 {
                    hours += od.recovery_hours;
                }
                let od_cost = runner
                    .billing()
                    .on_demand_cost(od.unit_price, hours, od.instances);
                emit(recorder, TraceLevel::Summary, || Event::OnDemandFallback {
                    at_hours: start + elapsed,
                    remaining_fraction: remaining,
                    od_hours: hours,
                    od_cost,
                    reason: "deadline-guard".to_string(),
                });
                let wall = elapsed + hours;
                let run = RunOutcome {
                    total_cost: spot_cost + od_cost,
                    spot_cost,
                    od_cost,
                    wall_hours: wall,
                    finisher: Finisher::OnDemand,
                    groups_failed,
                    met_deadline: wall <= problem.deadline,
                };
                emit_run_completed(recorder, &run, windows, plan_changes);
                return Ok(AdaptiveOutcome {
                    run,
                    windows,
                    plan_changes,
                });
            }

            // Plan continuity: a healthy plan (progress made, nobody killed
            // out-of-bid) is kept across window boundaries — re-launching
            // different instances every `T_m` pays launch waits and
            // partial-hour billing for nothing. Update maintenance
            // re-plans at the events where fresh market knowledge matters:
            // failures, stalls, and the initial launch. w/o-MT never
            // re-plans at all.
            let reuse = frozen_full.is_some() && (!self.update_maintenance || !replan_needed);
            let mut fingerprint_hit = false;
            let decision = if reuse {
                let (frozen, made_for) = frozen_full.as_ref().expect("checked");
                let d = WindowDecision::Hybrid(frozen.scaled((remaining / made_for).min(1.0)));
                emit(recorder, TraceLevel::Summary, || Event::WindowReplanned {
                    window: windows,
                    elapsed_hours: elapsed,
                    remaining_fraction: remaining,
                    reused: true,
                    decision: "hybrid".to_string(),
                    groups: d.plan().groups.len() as u32,
                    fingerprint_hit: false,
                });
                d
            } else {
                let planned = {
                    let mut pctx = PlanContext::new()
                        .with_recorder(recorder)
                        .with_cache(&mut cache)
                        .with_warm(&mut warm)
                        .with_window(windows);
                    if let Some(f) = ctx.faults {
                        pctx = pctx.with_faults(f);
                    }
                    self.planner
                        .plan_window_with(policy, problem, remaining, elapsed, &view, &mut pctx)?
                };
                fingerprint_hit = planned.fingerprint_hit;
                planned.decision
            };

            match decision {
                WindowDecision::FinishOnDemand(plan) => {
                    // Run the residual on demand and stop.
                    let od = &plan.on_demand;
                    let mut hours = od.exec_hours; // already residual-scaled
                    if done_fraction > 0.0 {
                        hours += od.recovery_hours;
                    }
                    let od_cost =
                        runner
                            .billing()
                            .on_demand_cost(od.unit_price, hours, od.instances);
                    emit(recorder, TraceLevel::Summary, || Event::OnDemandFallback {
                        at_hours: start + elapsed,
                        remaining_fraction: remaining,
                        od_hours: hours,
                        od_cost,
                        reason: "replan".to_string(),
                    });
                    let wall = elapsed + hours;
                    let run = RunOutcome {
                        total_cost: spot_cost + od_cost,
                        spot_cost,
                        od_cost,
                        wall_hours: wall,
                        finisher: Finisher::OnDemand,
                        groups_failed,
                        met_deadline: wall <= problem.deadline,
                    };
                    emit_run_completed(recorder, &run, windows, plan_changes);
                    return Ok(AdaptiveOutcome {
                        run,
                        windows,
                        plan_changes,
                    });
                }
                WindowDecision::Hybrid(plan) => {
                    if !reuse {
                        // A fingerprint hit re-issues the cached plan
                        // (rescaled), so it is not a plan *change* even
                        // though the residual hours differ.
                        if self.update_maintenance && !fingerprint_hit {
                            if let Some(prev) = &current_plan {
                                if *prev != plan {
                                    plan_changes += 1;
                                }
                            }
                        }
                        // Remember this plan and what residual it was
                        // sized for, for later continuity rescaling.
                        frozen_full = Some((plan.clone(), remaining));
                    }
                    // Execute one window of the (residual) plan. The plan's
                    // groups carry residual exec_hours already; replay them
                    // fully (fraction 1.0 of the residual problem). The
                    // window never overruns the deadline budget: Algorithm 1
                    // re-evaluates at the deadline at the latest.
                    let win = cfg.window_hours.min((problem.deadline - elapsed).max(0.25));
                    // `reuse` means the same healthy instances keep
                    // running across the boundary: no fresh launch wait.
                    let w = runner.run_window(&plan, now, 1.0, Some(win), reuse, ctx)?;
                    spot_cost += w.spot_cost;
                    groups_failed += w.groups_failed;
                    // An out-of-bid kill is surfaced to the policy; the
                    // default reaction invalidates the cached plan (the
                    // realized market just diverged from what the
                    // fingerprint digested, even if the digest still
                    // matches within tolerance) and drops the warm seed
                    // while keeping the bucket tables (they digest the
                    // view, not the plan).
                    if w.groups_failed > 0 {
                        let kill = policy.on_kill(&KillObservation {
                            window: windows,
                            at_hours: now,
                            groups_failed: w.groups_failed,
                        });
                        if kill.clear_plan_cache {
                            cache.clear();
                        }
                        if kill.drop_warm_plan {
                            warm.invalidate_plan();
                        }
                    }
                    // The policy decides whether to re-plan; the default
                    // re-plans when the window went badly — someone was
                    // killed out-of-bid, or no durable progress was made.
                    replan_needed = policy
                        .on_window(&WindowObservation {
                            window: windows,
                            elapsed_hours: elapsed,
                            remaining_fraction: remaining,
                            groups_failed: w.groups_failed,
                            saved_fraction: w.saved_fraction,
                        })
                        .replan;
                    // saved_fraction is relative to the residual plan.
                    done_fraction += remaining * (w.saved_fraction / 1.0).min(1.0);
                    if w.completed_by.is_some() {
                        done_fraction = 1.0;
                    }
                    // Advance at least a little to guarantee progress even
                    // if nothing launched.
                    elapsed += w.elapsed.max(cfg.window_hours.min(0.25));
                    windows += 1;
                    current_plan = Some(plan);
                }
            }

            // Safety valve: never loop past the trace horizon.
            if start + elapsed >= self.market.horizon() {
                let view_plan = current_plan.clone().expect("looped at least once");
                let residual = (1.0 - done_fraction).max(0.0);
                let od = &view_plan.on_demand;
                let hours = od.exec_hours * residual + od.recovery_hours;
                let od_cost = runner
                    .billing()
                    .on_demand_cost(od.unit_price, hours, od.instances);
                emit(recorder, TraceLevel::Summary, || Event::OnDemandFallback {
                    at_hours: start + elapsed,
                    remaining_fraction: residual,
                    od_hours: hours,
                    od_cost,
                    reason: "trace-horizon".to_string(),
                });
                let wall = elapsed + hours;
                let run = RunOutcome {
                    total_cost: spot_cost + od_cost,
                    spot_cost,
                    od_cost,
                    wall_hours: wall,
                    finisher: Finisher::OnDemand,
                    groups_failed,
                    met_deadline: wall <= problem.deadline,
                };
                emit_run_completed(recorder, &run, windows, plan_changes);
                return Ok(AdaptiveOutcome {
                    run,
                    windows,
                    plan_changes,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use mpi_sim::npb::{NpbClass, NpbKernel};
    use mpi_sim::storage::S3Store;
    use sompi_core::twolevel::OptimizerConfig;

    fn setup(seed: u64) -> (SpotMarket, Problem) {
        let cat = InstanceCatalog::paper_2014();
        let prof = MarketProfile::paper_2014(&cat);
        let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, seed), 400.0, 1.0 / 12.0);
        let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
        let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
            .iter()
            .map(|n| market.catalog().by_name(n).unwrap())
            .collect();
        let problem = Problem::build(&market, &profile, 3.0, Some(&types), S3Store::paper_2014());
        (market, problem)
    }

    fn config() -> AdaptiveConfig {
        AdaptiveConfig {
            window_hours: 1.0,
            history_hours: 48.0,
            optimizer: OptimizerConfig {
                kappa: 2,
                bid_levels: 3,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn run(r: &AdaptiveRunner<'_>, problem: &Problem, start: Hours) -> AdaptiveOutcome {
        r.run(problem, start, &ExecContext::new()).unwrap()
    }

    #[test]
    fn completes_and_reports_cost() {
        let (market, problem) = setup(41);
        let out = run(&AdaptiveRunner::new(&market, config()), &problem, 60.0);
        assert!(out.run.total_cost > 0.0);
        assert!(out.run.wall_hours > 0.0);
        assert!(out.windows >= 1);
    }

    #[test]
    fn without_maintenance_never_replans() {
        let (market, problem) = setup(43);
        let r = AdaptiveRunner::new(&market, config()).without_maintenance();
        let out = run(&r, &problem, 60.0);
        assert_eq!(out.plan_changes, 0);
    }

    #[test]
    fn deterministic_given_offset() {
        let (market, problem) = setup(47);
        let r = AdaptiveRunner::new(&market, config());
        let a = run(&r, &problem, 72.0);
        let b = run(&r, &problem, 72.0);
        assert_eq!(a, b);
    }

    #[test]
    fn meets_loose_deadline_on_calm_markets() {
        let (market, problem) = setup(53);
        // Sample several offsets; the adaptive runner should usually meet
        // the loose deadline (3 h vs ~1.1 h baseline).
        let r = AdaptiveRunner::new(&market, config());
        let met = (0..5)
            .map(|i| run(&r, &problem, 60.0 + 40.0 * i as f64))
            .filter(|o| o.run.met_deadline)
            .count();
        assert!(met >= 3, "only {met}/5 met the deadline");
    }

    #[test]
    fn warm_start_does_not_change_the_replayed_outcome() {
        // The runner threads warm-start state through every window; the
        // layers are exactness-preserving, so the full replayed outcome
        // (cost, wall hours, window count, plan changes) must be
        // bit-identical to the runner with both layers ablated off.
        let (market, problem) = setup(47);
        let mut cold_cfg = config();
        cold_cfg.warmstart = false;
        cold_cfg.bucket_reuse = false;
        let warm_runner = AdaptiveRunner::new(&market, config());
        let cold_runner = AdaptiveRunner::new(&market, cold_cfg);
        for start in [60.0, 120.0, 200.0] {
            let warm = run(&warm_runner, &problem, start);
            let cold = run(&cold_runner, &problem, start);
            assert_eq!(warm, cold, "offset {start}: warm start changed the run");
        }
    }

    #[test]
    fn permanent_feed_gap_still_completes() {
        use ec2_market::fault::{FaultInjector, FaultPlan};
        let (market, problem) = setup(41);
        let inj = FaultInjector::new(
            FaultPlan {
                seed: 11,
                feed_gap_prob: 1.0,
                ..FaultPlan::quiet()
            },
            market.horizon(),
        );
        let r = AdaptiveRunner::new(&market, config());
        let out = r
            .run(&problem, 60.0, &ExecContext::new().with_faults(&inj))
            .unwrap();
        // Every window gapped: the first plans best-effort on the gapped
        // view, later windows reuse it — the run still finishes and the
        // accounting stays coherent.
        assert!(out.run.total_cost > 0.0);
        assert!(out.run.wall_hours > 0.0);
    }
}
