//! Structured event timelines for replayed executions.
//!
//! [`timeline`] re-walks one plan against the realized traces and emits the
//! narrative an operator debugging a run wants: when each circle group
//! launched, checkpointed, died or won, and when the on-demand fallback
//! took over. It is computed independently from [`crate::exec`]'s
//! accounting and cross-checked against it in tests — a second
//! implementation of the execution semantics guarding the first.

use crate::exec::{Finisher, PlanRunner};
use crate::Hours;
use ec2_market::market::{CircleGroupId, SpotMarket};
use serde::{Deserialize, Serialize};
use sompi_core::model::Plan;

/// One event in a replayed execution. Times are absolute trace hours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A circle group's instances came up (price at or below the bid).
    Launched {
        /// The group.
        group: CircleGroupId,
        /// When.
        at: Hours,
    },
    /// A coordinated checkpoint completed.
    Checkpointed {
        /// The group.
        group: CircleGroupId,
        /// When the dump finished.
        at: Hours,
        /// Productive hours durably saved so far.
        saved_hours: Hours,
    },
    /// Out-of-bid: the provider reclaimed the group's instances.
    OutOfBid {
        /// The group.
        group: CircleGroupId,
        /// When.
        at: Hours,
    },
    /// The group finished the application — the winner.
    Completed {
        /// The group.
        group: CircleGroupId,
        /// When.
        at: Hours,
    },
    /// A still-running group was terminated by the user (winner rule or
    /// deadline cutoff).
    UserTerminated {
        /// The group.
        group: CircleGroupId,
        /// When.
        at: Hours,
    },
    /// The on-demand fallback started on the residual work.
    OnDemandStarted {
        /// When.
        at: Hours,
        /// Fraction of the application still to execute.
        remaining_fraction: f64,
    },
}

impl Event {
    /// Absolute time of the event.
    pub fn at(&self) -> Hours {
        match *self {
            Event::Launched { at, .. }
            | Event::Checkpointed { at, .. }
            | Event::OutOfBid { at, .. }
            | Event::Completed { at, .. }
            | Event::UserTerminated { at, .. }
            | Event::OnDemandStarted { at, .. } => at,
        }
    }
}

/// Compute the event timeline of replaying `plan` from `start` with a
/// deadline cutoff, mirroring [`PlanRunner::run`] semantics.
pub fn timeline(market: &SpotMarket, plan: &Plan, start: Hours, deadline: Hours) -> Vec<Event> {
    let cutoff = start + deadline;
    let mut events: Vec<Event> = Vec::new();

    // Per-group walk.
    struct G {
        id: CircleGroupId,
        completion: Option<Hours>,
        end: Hours,
        died: bool,
        saved_fraction: f64,
    }
    let mut walks: Vec<G> = Vec::new();

    for (group, decision) in &plan.groups {
        let query = market
            .query(group.id)
            .expect("plan group must have a trace");
        let interval = decision.ckpt_interval.min(group.exec_hours);
        let ckpt_on = interval < group.exec_hours;
        let o = group.ckpt_overhead_hours;

        // Launch (indexed when enabled; bit-identical either way).
        let launch = query.launch_time(start, decision.bid, cutoff);
        let Some(launch_t) = launch else {
            walks.push(G {
                id: group.id,
                completion: None,
                end: cutoff,
                died: false,
                saved_fraction: 0.0,
            });
            continue;
        };
        events.push(Event::Launched {
            group: group.id,
            at: launch_t,
        });

        let death = query
            .first_passage_above(launch_t, decision.bid)
            .unwrap_or(f64::INFINITY);
        let n_ckpt = if ckpt_on {
            (group.exec_hours / interval).floor()
        } else {
            0.0
        };
        let completion = launch_t + group.exec_hours + o * n_ckpt;
        let end = completion.min(death).min(cutoff);

        // Checkpoint events up to `end`.
        let mut saved = 0.0;
        if ckpt_on {
            let cycle = interval + o;
            let mut k = 1.0;
            loop {
                let at = launch_t + k * cycle;
                if at > end || k * interval >= group.exec_hours {
                    break;
                }
                saved = k * interval;
                events.push(Event::Checkpointed {
                    group: group.id,
                    at,
                    saved_hours: saved,
                });
                k += 1.0;
            }
        }

        if completion <= death && completion <= cutoff {
            events.push(Event::Completed {
                group: group.id,
                at: completion,
            });
            walks.push(G {
                id: group.id,
                completion: Some(completion),
                end: completion,
                died: false,
                saved_fraction: 1.0,
            });
        } else if death <= cutoff {
            events.push(Event::OutOfBid {
                group: group.id,
                at: death,
            });
            walks.push(G {
                id: group.id,
                completion: None,
                end: death,
                died: true,
                saved_fraction: saved / group.exec_hours,
            });
        } else {
            walks.push(G {
                id: group.id,
                completion: None,
                end: cutoff,
                died: false,
                // User stop takes a final checkpoint (Algorithm 1 line 22).
                saved_fraction: ((cutoff - launch_t).min(group.exec_hours) / group.exec_hours)
                    .clamp(0.0, 1.0),
            });
        }
    }

    // Winner rule.
    let winner_end = walks
        .iter()
        .filter_map(|w| w.completion)
        .fold(f64::INFINITY, f64::min);
    if winner_end.is_finite() {
        // Drop events after the winner and user-terminate the others.
        events.retain(|e| e.at() <= winner_end);
        for w in &walks {
            if w.completion != Some(winner_end) && w.end > winner_end {
                events.push(Event::UserTerminated {
                    group: w.id,
                    at: winner_end,
                });
            }
        }
    } else {
        // All dead / cut off: on-demand takes over at the last end.
        let last_end = walks.iter().map(|w| w.end).fold(start, f64::max);
        for w in &walks {
            if !w.died && !plan.groups.is_empty() && w.end >= cutoff {
                events.push(Event::UserTerminated {
                    group: w.id,
                    at: w.end,
                });
            }
        }
        let best = walks.iter().map(|w| w.saved_fraction).fold(0.0, f64::max);
        events.push(Event::OnDemandStarted {
            at: last_end,
            remaining_fraction: (1.0 - best).max(0.0),
        });
    }

    events.sort_by(|a, b| a.at().total_cmp(&b.at()));
    events
}

/// Render a timeline as indented text (one event per line).
pub fn render(events: &[Event], start: Hours) -> String {
    let mut out = String::new();
    for e in events {
        let rel = e.at() - start;
        let line = match e {
            Event::Launched { group, .. } => format!("{group} launched"),
            Event::Checkpointed {
                group, saved_hours, ..
            } => {
                format!("{group} checkpointed ({saved_hours:.2} h saved)")
            }
            Event::OutOfBid { group, .. } => format!("{group} killed out-of-bid"),
            Event::Completed { group, .. } => format!("{group} COMPLETED"),
            Event::UserTerminated { group, .. } => format!("{group} terminated by user"),
            Event::OnDemandStarted {
                remaining_fraction, ..
            } => {
                format!(
                    "on-demand fallback starts ({:.0}% of work remaining)",
                    remaining_fraction * 100.0
                )
            }
        };
        out.push_str(&format!("  t+{rel:7.2}h  {line}\n"));
    }
    out
}

/// Convenience: the timeline plus the runner's outcome, guaranteed
/// consistent (used in tests and by the CLI).
pub fn timeline_checked(
    market: &SpotMarket,
    plan: &Plan,
    start: Hours,
    deadline: Hours,
) -> (Vec<Event>, crate::exec::RunOutcome) {
    let events = timeline(market, plan, start, deadline);
    // `timeline` above already panics on a plan group without a trace,
    // so unwrapping here keeps the two walks' contracts aligned.
    let outcome = PlanRunner::new(market, deadline)
        .run(plan, start, &crate::exec::ExecContext::new())
        .expect("timeline above already validated every plan group against the market");
    // Consistency: a Completed event exists iff the runner finished on spot.
    let completed = events.iter().any(|e| matches!(e, Event::Completed { .. }));
    debug_assert_eq!(
        completed,
        matches!(outcome.finisher, Finisher::Spot(_)),
        "timeline and runner disagree on the finisher"
    );
    (events, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::trace::SpotTrace;
    use ec2_market::zone::AvailabilityZone;
    use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};

    fn market(prices: &[f64]) -> (SpotMarket, CircleGroupId) {
        let cat = InstanceCatalog::paper_2014();
        let ty = cat.by_name("m1.small").unwrap();
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let mut m = SpotMarket::new(cat);
        m.insert(id, SpotTrace::new(1.0, prices.to_vec()));
        (m, id)
    }

    fn plan(id: CircleGroupId, exec: f64, interval: f64) -> Plan {
        Plan {
            groups: vec![(
                CircleGroup {
                    id,
                    instances: 2,
                    exec_hours: exec,
                    ckpt_overhead_hours: 0.0,
                    recovery_hours: 0.1,
                },
                GroupDecision {
                    bid: 0.2,
                    ckpt_interval: interval,
                },
            )],
            on_demand: OnDemandOption {
                instance_type: InstanceTypeId(4),
                instances: 1,
                exec_hours: 4.0,
                unit_price: 2.0,
                recovery_hours: 0.5,
            },
        }
    }

    #[test]
    fn clean_run_produces_launch_checkpoints_completion() {
        let (m, id) = market(&[0.1; 24]);
        let p = plan(id, 3.0, 1.0);
        let (events, outcome) = timeline_checked(&m, &p, 0.0, 10.0);
        assert!(matches!(events[0], Event::Launched { at, .. } if at == 0.0));
        let ckpts = events
            .iter()
            .filter(|e| matches!(e, Event::Checkpointed { .. }))
            .count();
        assert_eq!(ckpts, 2, "checkpoints at 1h and 2h (completion at 3h)");
        assert!(matches!(events.last(), Some(Event::Completed { at, .. }) if *at == 3.0));
        assert!(matches!(outcome.finisher, Finisher::Spot(_)));
    }

    #[test]
    fn out_of_bid_run_ends_with_od_start() {
        let (m, id) = market(&[0.1, 0.1, 9.0, 0.1, 0.1, 0.1, 0.1, 0.1]);
        let p = plan(id, 3.0, 1.0);
        let (events, outcome) = timeline_checked(&m, &p, 0.0, 10.0);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::OutOfBid { at, .. } if *at == 2.0)));
        let od = events
            .iter()
            .find_map(|e| match e {
                Event::OnDemandStarted {
                    remaining_fraction, ..
                } => Some(*remaining_fraction),
                _ => None,
            })
            .expect("od start event");
        // Two checkpoints saved 2/3 of the 3-hour job.
        assert!((od - 1.0 / 3.0).abs() < 1e-9);
        assert!(matches!(outcome.finisher, Finisher::OnDemand));
    }

    #[test]
    fn events_are_time_ordered() {
        let (m, id) = market(&[0.1; 24]);
        let p = plan(id, 5.0, 0.7);
        let events = timeline(&m, &p, 2.0, 20.0);
        for w in events.windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }

    #[test]
    fn render_is_human_readable() {
        let (m, id) = market(&[0.1; 24]);
        let p = plan(id, 2.0, 2.0);
        let events = timeline(&m, &p, 0.0, 10.0);
        let text = render(&events, 0.0);
        assert!(text.contains("launched"));
        assert!(text.contains("COMPLETED"));
    }

    #[test]
    fn consistency_with_runner_across_many_scenarios() {
        // Fuzz-ish consistency sweep over hand-built price shapes.
        for (i, prices) in [
            vec![0.1; 30],
            vec![9.0; 30],
            {
                let mut v = vec![0.1; 30];
                v[3] = 9.0;
                v
            },
            {
                let mut v = vec![0.1; 30];
                v[1] = 9.0;
                v[2] = 9.0;
                v
            },
        ]
        .into_iter()
        .enumerate()
        {
            let (m, id) = market(&prices);
            let p = plan(id, 3.0, 1.0);
            let (_, _) = timeline_checked(&m, &p, 0.0, 12.0);
            let _ = i;
        }
    }
}
