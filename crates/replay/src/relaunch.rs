//! Extension: persistent spot requests with checkpoint-resume relaunch.
//!
//! The paper's model treats an out-of-bid kill as the end of a circle
//! group — recovery happens on demand. Real spot tooling (and AWS's later
//! *persistent* spot requests) instead re-acquires capacity when the price
//! comes back under the bid and resumes from the latest checkpoint. This
//! module replays that policy for a single circle group plan, so the
//! repository can quantify what the paper's model leaves on the table
//! (and when it does not: relaunching burns deadline waiting out spikes).
//!
//! Under an [`ExecContext`] with faults, three resilience behaviors kick
//! in: kill storms end incarnations the price trace would have spared,
//! the retry policy paces re-incarnations after provider kills (backing
//! off instead of hammering a reclaimed pool), and a corrupt checkpoint
//! restore falls back one checkpoint interval of durable progress.

use crate::exec::{ExecContext, Finisher};
use crate::{Hours, Usd};
use ec2_market::billing::{BillingModel, Termination};
use ec2_market::fault::group_key;
use ec2_market::market::SpotMarket;
use serde::{Deserialize, Serialize};
use sompi_core::error::SompiError;
use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption};
use sompi_obs::{emit, Event, Recorder, TraceLevel};

/// Outcome of a persistent-request replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaunchOutcome {
    /// Total realized cost (spot + any final on-demand), USD.
    pub total_cost: Usd,
    /// Spot share.
    pub spot_cost: Usd,
    /// On-demand share (only if the deadline forces a bail-out).
    pub od_cost: Usd,
    /// Wall hours from request to completion.
    pub wall_hours: Hours,
    /// Number of spot incarnations (1 = never killed).
    pub incarnations: u32,
    /// Who finished.
    pub finisher: Finisher,
    /// Whether the deadline was met.
    pub met_deadline: bool,
}

/// Replay one circle group with persistent relaunch semantics.
///
/// The group keeps a durable best checkpoint; each incarnation waits for
/// the price to come under the bid, restores (`R_i`), and continues.
/// At the last moment the on-demand fallback can still meet the deadline
/// with the remaining work, the policy bails out to on-demand.
///
/// Emits trace events to the context's recorder: one
/// [`Event::GroupFailed`] per provider-killed incarnation,
/// [`Event::CheckpointTaken`] when an incarnation banks durable progress,
/// [`Event::OnDemandFallback`] with reason `"bail-out"` when the deadline
/// guard fires, fault events under an injector, and a final
/// [`Event::RunCompleted`]. All `at_hours` are on the market-trace clock.
///
/// Errors with [`SompiError::UnknownGroup`] when the market has no trace
/// for `group`.
pub fn run_persistent(
    market: &SpotMarket,
    group: &CircleGroup,
    decision: &GroupDecision,
    od: &OnDemandOption,
    start: Hours,
    deadline: Hours,
    ctx: &ExecContext<'_>,
) -> Result<RelaunchOutcome, SompiError> {
    let recorder = ctx.recorder;
    let billing = BillingModel::hourly();
    let query = market
        .query(group.id)
        .ok_or_else(|| SompiError::UnknownGroup {
            group: group.id.to_string(),
        })?;
    let trace = query.trace();
    let interval = decision.ckpt_interval.min(group.exec_hours);
    let ckpt_on = interval < group.exec_hours;
    let o = group.ckpt_overhead_hours;
    let seed = ctx.faults.map(|f| f.plan().seed).unwrap_or(0);
    let gkey = group_key(group.id);

    let mut now = start;
    let mut saved: Hours = 0.0; // durable productive progress
    let mut spot_cost = 0.0;
    let mut incarnations = 0u32;
    let mut kills = 0u32;

    loop {
        let remaining = group.exec_hours - saved;
        // Bail-out guard: the latest time on-demand can still finish.
        let od_hours = od.exec_hours * (remaining / group.exec_hours) + od.recovery_hours;
        let latest_od_start = start + deadline - od_hours;
        if now >= latest_od_start || now >= start + deadline {
            let od_cost = billing.on_demand_cost(od.unit_price, od_hours, od.instances);
            let wall = (now - start) + od_hours;
            let out = RelaunchOutcome {
                total_cost: spot_cost + od_cost,
                spot_cost,
                od_cost,
                wall_hours: wall,
                incarnations,
                finisher: Finisher::OnDemand,
                met_deadline: wall <= deadline,
            };
            emit(recorder, TraceLevel::Summary, || Event::OnDemandFallback {
                at_hours: now,
                remaining_fraction: remaining / group.exec_hours,
                od_hours,
                od_cost,
                reason: "bail-out".to_string(),
            });
            emit_relaunch_completed(recorder, &out, kills);
            return Ok(out);
        }

        // Wait for a launchable price (bounded by the bail-out guard).
        let launch = query.launch_time(now, decision.bid, latest_od_start);
        let Some(mut launch_t) = launch else {
            now = latest_od_start;
            continue; // guard fires next iteration
        };
        incarnations += 1;
        // Restoring a checkpoint costs recovery time on re-incarnations —
        // and under an injector the restore can read a corrupt image, in
        // which case the incarnation falls back one checkpoint interval.
        let mut remaining = remaining;
        if saved > 0.0 {
            if let Some(inj) = ctx.faults {
                if inj.restore_corrupted_for(group.id, incarnations) {
                    let lost = if ckpt_on { interval.min(saved) } else { saved };
                    saved -= lost;
                    remaining = group.exec_hours - saved;
                    let at = launch_t;
                    emit(recorder, TraceLevel::Summary, || Event::FaultInjected {
                        class: "restore-corruption".to_string(),
                        group: Some(group.id.to_string()),
                        at_hours: at,
                        detail: lost / group.exec_hours,
                    });
                    emit(recorder, TraceLevel::Summary, || Event::DegradedMode {
                        mode: "previous-checkpoint".to_string(),
                        group: Some(group.id.to_string()),
                        at_hours: at,
                        reason: "restore-corruption".to_string(),
                    });
                }
            }
            if saved > 0.0 {
                launch_t += group.recovery_hours;
            }
        }

        let price_death = query
            .first_passage_above(launch_t, decision.bid)
            .unwrap_or(f64::INFINITY);
        let storm_death = ctx
            .faults
            .and_then(|f| f.storm_kill_after(group.id, launch_t))
            .unwrap_or(f64::INFINITY);
        let death = price_death.min(storm_death);
        let n_ckpt = if ckpt_on {
            (remaining / interval).floor()
        } else {
            0.0
        };
        let completion = launch_t + remaining + o * n_ckpt;

        if completion <= death && completion <= latest_od_start + od_hours {
            // Completed on spot (possibly slightly past the guard if the
            // run was already in flight — allowed, it beats bailing).
            spot_cost += billing.spot_cost(
                trace,
                launch_t.min(completion),
                completion,
                Termination::User,
                group.instances,
            );
            let wall = completion - start;
            let out = RelaunchOutcome {
                total_cost: spot_cost,
                spot_cost,
                od_cost: 0.0,
                wall_hours: wall,
                incarnations,
                finisher: Finisher::Spot(group.id),
                met_deadline: wall <= deadline,
            };
            emit_relaunch_completed(recorder, &out, kills);
            return Ok(out);
        }

        // Killed (or guard reached) before completion.
        let end = death.min(latest_od_start.max(launch_t));
        if end > launch_t {
            let alive = end - launch_t;
            if ckpt_on {
                let cycle = interval + o;
                let banked = (alive / cycle).floor();
                let before = saved;
                saved = (saved + banked * interval).min(group.exec_hours);
                if saved > before {
                    emit(recorder, TraceLevel::Detail, || Event::CheckpointTaken {
                        group: group.id.to_string(),
                        at_hours: launch_t + banked * cycle,
                        count: banked as u32,
                        saved_fraction: saved / group.exec_hours,
                    });
                }
            }
            let provider_kill = death <= end;
            spot_cost += billing.spot_cost(
                trace,
                launch_t,
                end,
                if provider_kill {
                    Termination::Provider
                } else {
                    Termination::User
                },
                group.instances,
            );
            if provider_kill {
                kills += 1;
                if storm_death <= end && storm_death < price_death {
                    emit(recorder, TraceLevel::Summary, || Event::FaultInjected {
                        class: "spot-kill-storm".to_string(),
                        group: Some(group.id.to_string()),
                        at_hours: storm_death,
                        detail: 0.0,
                    });
                }
                emit(recorder, TraceLevel::Summary, || Event::GroupFailed {
                    group: group.id.to_string(),
                    at_hours: end,
                    saved_fraction: saved / group.exec_hours,
                });
            }
        }
        now = end.max(now + trace.step_hours());
        // Retry pacing: after a provider kill, back off before scanning
        // for the next incarnation — re-requesting a just-reclaimed pool
        // immediately tends to land in the same storm.
        if death <= end && !ctx.retry.is_noop() {
            let backoff = ctx
                .retry
                .backoff_hours(seed, gkey ^ incarnations as u64, kills.max(1));
            if backoff > 0.0 {
                emit(recorder, TraceLevel::Summary, || Event::RetryAttempted {
                    op: "relaunch".to_string(),
                    group: group.id.to_string(),
                    at_hours: end,
                    attempt: incarnations,
                    backoff_hours: backoff,
                    gave_up: false,
                });
                now += backoff;
            }
        }
    }
}

fn emit_relaunch_completed(recorder: &dyn Recorder, out: &RelaunchOutcome, kills: u32) {
    emit(recorder, TraceLevel::Summary, || Event::RunCompleted {
        finisher: match out.finisher {
            Finisher::Spot(id) => format!("spot:{id}"),
            Finisher::OnDemand => "on-demand".to_string(),
        },
        total_cost: out.total_cost,
        spot_cost: out.spot_cost,
        od_cost: out.od_cost,
        wall_hours: out.wall_hours,
        met_deadline: out.met_deadline,
        groups_failed: kills,
        windows: None,
        plan_changes: None,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::fault::{FaultInjector, FaultPlan, RetryPolicy};
    use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
    use ec2_market::market::CircleGroupId;
    use ec2_market::trace::SpotTrace;
    use ec2_market::zone::AvailabilityZone;

    fn market(prices: &[f64]) -> (SpotMarket, CircleGroupId) {
        let cat = InstanceCatalog::paper_2014();
        let ty = cat.by_name("m1.small").unwrap();
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let mut m = SpotMarket::new(cat);
        m.insert(id, SpotTrace::new(1.0, prices.to_vec()));
        (m, id)
    }

    fn group(id: CircleGroupId, exec: Hours) -> CircleGroup {
        CircleGroup {
            id,
            instances: 2,
            exec_hours: exec,
            ckpt_overhead_hours: 0.0,
            recovery_hours: 0.0,
        }
    }

    fn od() -> OnDemandOption {
        OnDemandOption {
            instance_type: InstanceTypeId(4),
            instances: 1,
            exec_hours: 4.0,
            unit_price: 2.0,
            recovery_hours: 0.5,
        }
    }

    fn run(
        m: &SpotMarket,
        g: &CircleGroup,
        d: &GroupDecision,
        start: Hours,
        deadline: Hours,
    ) -> RelaunchOutcome {
        run_persistent(m, g, d, &od(), start, deadline, &ExecContext::new()).unwrap()
    }

    #[test]
    fn uninterrupted_run_has_one_incarnation() {
        let (m, id) = market(&[0.1; 48]);
        let g = group(id, 3.0);
        let d = GroupDecision {
            bid: 0.2,
            ckpt_interval: 1.0,
        };
        let out = run(&m, &g, &d, 0.0, 40.0);
        assert_eq!(out.incarnations, 1);
        assert_eq!(out.finisher, Finisher::Spot(id));
        assert!((out.wall_hours - 3.0).abs() < 1e-9);
        assert_eq!(out.od_cost, 0.0);
    }

    #[test]
    fn relaunch_resumes_from_checkpoint() {
        // Price: 2 cheap hours, 2 expensive, then cheap forever.
        let mut p = vec![0.1, 0.1, 9.0, 9.0];
        p.extend(vec![0.1; 44]);
        let (m, id) = market(&p);
        let g = group(id, 3.0);
        let d = GroupDecision {
            bid: 0.2,
            ckpt_interval: 1.0,
        };
        let out = run(&m, &g, &d, 0.0, 40.0);
        // Incarnation 1 runs [0,2) and saves 2 checkpoints; incarnation 2
        // starts at hour 4 and needs 1 more hour.
        assert_eq!(out.incarnations, 2);
        assert_eq!(out.finisher, Finisher::Spot(id));
        assert!(
            (out.wall_hours - 5.0).abs() < 1e-9,
            "wall {}",
            out.wall_hours
        );
        // Billed: 2 whole hours at 0.1 (first life, provider-killed, no
        // partial) + 1 hour at 0.1 (second life) × 2 instances.
        assert!((out.spot_cost - 0.1 * 3.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn without_checkpoints_relaunch_restarts_from_zero() {
        let mut p = vec![0.1, 0.1, 9.0];
        p.extend(vec![0.1; 44]);
        let (m, id) = market(&p);
        let g = group(id, 3.0);
        let d = GroupDecision {
            bid: 0.2,
            ckpt_interval: 3.0,
        }; // no ckpt
        let out = run(&m, &g, &d, 0.0, 40.0);
        assert_eq!(out.incarnations, 2);
        // Second life needs the full 3 hours: finishes at 3 + 3 = 6.
        assert!(
            (out.wall_hours - 6.0).abs() < 1e-9,
            "wall {}",
            out.wall_hours
        );
    }

    #[test]
    fn deadline_pressure_forces_od_bailout() {
        // Price too high forever: the guard fires and on-demand finishes.
        let (m, id) = market(&[9.0; 48]);
        let g = group(id, 3.0);
        let d = GroupDecision {
            bid: 0.2,
            ckpt_interval: 1.0,
        };
        let out = run(&m, &g, &d, 0.0, 10.0);
        assert_eq!(out.finisher, Finisher::OnDemand);
        assert_eq!(out.incarnations, 0);
        assert!(out.met_deadline);
        assert_eq!(out.spot_cost, 0.0);
    }

    #[test]
    fn deterministic() {
        let mut p = vec![0.1; 10];
        p[4] = 9.0;
        p.extend(vec![0.1; 30]);
        let (m, id) = market(&p);
        let g = group(id, 6.0);
        let d = GroupDecision {
            bid: 0.2,
            ckpt_interval: 0.5,
        };
        let a = run(&m, &g, &d, 0.0, 40.0);
        let b = run(&m, &g, &d, 0.0, 40.0);
        assert_eq!(a, b);
    }

    #[test]
    fn storms_create_extra_incarnations() {
        // A calm trace the price would never kill — with a dense storm
        // stream, the persistent request keeps dying and relaunching.
        let (m, id) = market(&[0.1; 48]);
        let g = group(id, 6.0);
        let d = GroupDecision {
            bid: 0.2,
            ckpt_interval: 1.0,
        };
        let inj = FaultInjector::new(
            FaultPlan {
                seed: 23,
                storm_rate_per_hour: 0.5,
                storm_group_prob: 1.0,
                ..FaultPlan::quiet()
            },
            48.0,
        );
        let calm = run(&m, &g, &d, 0.0, 40.0);
        let stormy = run_persistent(
            &m,
            &g,
            &d,
            &od(),
            0.0,
            40.0,
            &ExecContext::new().with_faults(&inj),
        )
        .unwrap();
        assert_eq!(calm.incarnations, 1);
        assert!(
            stormy.incarnations > calm.incarnations,
            "storms must force relaunches, got {}",
            stormy.incarnations
        );
        // Checkpoint-resume still converges to completion or bail-out.
        assert!(stormy.wall_hours >= calm.wall_hours);
    }

    #[test]
    fn retry_policy_paces_relaunches() {
        // Stormy scenario with backoff: each provider kill must be
        // followed by a `RetryAttempted` relaunch-pacing event with a
        // positive deterministic backoff, and the run stays reproducible.
        use sompi_obs::{RingRecorder, TraceLevel};
        let (m, id) = market(&[0.1; 48]);
        let g = group(id, 6.0);
        let d = GroupDecision {
            bid: 0.2,
            ckpt_interval: 1.0,
        };
        let inj = FaultInjector::new(
            FaultPlan {
                seed: 23,
                storm_rate_per_hour: 0.5,
                storm_group_prob: 1.0,
                ..FaultPlan::quiet()
            },
            48.0,
        );
        let ring = RingRecorder::new(TraceLevel::Summary, 4096);
        let ctx = ExecContext::new()
            .with_faults(&inj)
            .with_retry(RetryPolicy::default_io())
            .with_recorder(&ring);
        let paced = run_persistent(&m, &g, &d, &od(), 0.0, 40.0, &ctx).unwrap();
        let kills = ring
            .events()
            .iter()
            .filter(|e| matches!(e, sompi_obs::Event::GroupFailed { .. }))
            .count();
        let pacings: Vec<f64> = ring
            .events()
            .iter()
            .filter_map(|e| match e {
                sompi_obs::Event::RetryAttempted {
                    op, backoff_hours, ..
                } if op == "relaunch" => Some(*backoff_hours),
                _ => None,
            })
            .collect();
        assert!(kills > 0, "storms must kill at least one incarnation");
        assert_eq!(pacings.len(), kills, "one pacing decision per kill");
        assert!(pacings.iter().all(|b| *b > 0.0));
        let again = run_persistent(&m, &g, &d, &od(), 0.0, 40.0, &ctx).unwrap();
        assert_eq!(paced, again);
    }

    #[test]
    fn restore_corruption_loses_one_interval() {
        // Killed at hour 2 with 2 banked checkpoints; certain corruption
        // on restore drops one interval, so incarnation 2 has 2 h left
        // instead of 1: completion at 4 + 2 = 6 instead of 5.
        let mut p = vec![0.1, 0.1, 9.0, 9.0];
        p.extend(vec![0.1; 44]);
        let (m, id) = market(&p);
        let g = group(id, 3.0);
        let d = GroupDecision {
            bid: 0.2,
            ckpt_interval: 1.0,
        };
        let inj = FaultInjector::new(
            FaultPlan {
                seed: 5,
                restore_corrupt_prob: 1.0,
                ..FaultPlan::quiet()
            },
            48.0,
        );
        let clean = run(&m, &g, &d, 0.0, 40.0);
        let corrupt = run_persistent(
            &m,
            &g,
            &d,
            &od(),
            0.0,
            40.0,
            &ExecContext::new().with_faults(&inj),
        )
        .unwrap();
        assert!((clean.wall_hours - 5.0).abs() < 1e-9);
        assert!(
            (corrupt.wall_hours - 6.0).abs() < 1e-9,
            "wall {}",
            corrupt.wall_hours
        );
    }
}
