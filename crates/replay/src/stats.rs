//! Summary statistics for Monte-Carlo experiment results.
//!
//! Two ways to build a [`Summary`]:
//!
//! * [`Summary::of`] — exact, sort-based, needs the whole sample in memory;
//! * [`StreamingSummary`] — O(1)-memory accumulator with a deterministic
//!   merge, used by the Monte-Carlo driver so peak memory no longer scales
//!   with the replica count. Moments use Welford's update and Chan's
//!   pairwise merge; replicas are folded in fixed-size chunks and chunks
//!   merged in index order, so the result is bit-identical at any thread
//!   count (the chunking depends only on the sample size). `min`/`max` and
//!   all counters are exact; `median`/`p95` come from a log₂-quantized
//!   histogram (256 sub-bins per octave, ≲0.4% relative quantization
//!   error), clamped to the exact `[min, max]` — a documented
//!   approximation, adequate for the dispersion read-outs they feed.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary of a sample of scalar outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// Panics on an empty sample or non-finite values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        }
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Linear-interpolated percentile of a pre-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Number of leading `f64` bits (sign + exponent + 8 mantissa bits) kept as
/// the histogram bucket key; 256 sub-bins per octave.
const BUCKET_SHIFT: u32 = 44;

/// Bucket key for a non-negative finite value. Monotone in the value, so
/// cumulative bucket counts give rank bounds.
fn bucket_of(v: f64) -> u32 {
    if v <= 0.0 {
        0
    } else {
        (v.to_bits() >> BUCKET_SHIFT) as u32
    }
}

/// Half-open value range `[lo, hi)` covered by a bucket key.
fn bucket_bounds(key: u32) -> (f64, f64) {
    let lo = if key == 0 {
        0.0
    } else {
        f64::from_bits((key as u64) << BUCKET_SHIFT)
    };
    let hi = f64::from_bits(((key as u64) + 1) << BUCKET_SHIFT);
    (lo, hi)
}

/// Log₂-quantized counting histogram for quantile estimates. Bucket counts
/// are integers, so merging is exactly commutative and associative — the
/// result is independent of merge order and thread count.
#[derive(Debug, Clone, Default, PartialEq)]
struct QuantileHistogram {
    buckets: BTreeMap<u32, u64>,
}

impl QuantileHistogram {
    fn push(&mut self, v: f64) {
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
    }

    fn merge(&mut self, other: &Self) {
        for (&key, &count) in &other.buckets {
            *self.buckets.entry(key).or_insert(0) += count;
        }
    }

    /// Value at integer rank `r` (0-based), interpolated linearly inside the
    /// bucket that contains the rank.
    fn value_at_rank(&self, r: u64) -> f64 {
        let mut before = 0u64;
        for (&key, &count) in &self.buckets {
            if r < before + count {
                let (lo, hi) = bucket_bounds(key);
                let frac = (r - before) as f64 + 0.5;
                return lo + (hi - lo) * (frac / count as f64);
            }
            before += count;
        }
        // Ranks are always < total count; fall back to the top bucket edge.
        f64::NAN
    }

    /// Approximate `q`-quantile of `n` accumulated values, clamped to the
    /// exact observed `[min, max]`.
    ///
    /// Total on degenerate input instead of UB-adjacent: `n == 0` answers
    /// NaN (there is no quantile of nothing), a NaN `q` answers NaN, and
    /// out-of-range `q` clamps to `[0, 1]`. The old `debug_assert!`-only
    /// guard let release builds underflow `n - 1` for `n == 0` and walk
    /// ranks past the histogram, surfacing as a `clamp` panic on the
    /// empty accumulator's inverted `[∞, -∞]` range.
    fn quantile(&self, q: f64, n: u64, min: f64, max: f64) -> f64 {
        if n == 0 || q.is_nan() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        if n == 1 {
            return min;
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as u64;
        let hi = pos.ceil() as u64;
        let frac = pos - lo as f64;
        let v = self.value_at_rank(lo) * (1.0 - frac) + self.value_at_rank(hi) * frac;
        v.clamp(min, max)
    }
}

/// Streaming scalar accumulator: exact count/mean/variance/min/max plus a
/// quantized histogram for quantiles. See the module docs for the
/// determinism and accuracy contract.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingSummary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    hist: QuantileHistogram,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingSummary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hist: QuantileHistogram::default(),
        }
    }

    /// Number of values accumulated.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Fold one value in (Welford's update).
    ///
    /// # Panics
    /// Panics on non-finite values, matching [`Summary::of`].
    pub fn push(&mut self, v: f64) {
        assert!(v.is_finite(), "sample contains non-finite values");
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist.push(v);
    }

    /// Merge another accumulator in (Chan's pairwise update). Callers must
    /// merge partials in a fixed order for bit-identical results.
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// Finish into a [`Summary`].
    ///
    /// # Panics
    /// Panics if no values were accumulated.
    pub fn summary(&self) -> Summary {
        assert!(self.n > 0, "cannot summarize an empty sample");
        let var = if self.n > 1 {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        } else {
            0.0
        };
        Summary {
            n: self.n as usize,
            mean: self.mean,
            std_dev: var.sqrt(),
            min: self.min,
            max: self.max,
            median: self.hist.quantile(0.50, self.n, self.min, self.max),
            p95: self.hist.quantile(0.95, self.n, self.min, self.max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 10.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_value_degenerate() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn percentile_ordering() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&vals);
        assert!(s.median < s.p95);
        assert!(s.p95 <= s.max);
        assert!((s.p95 - 94.05).abs() < 1e-9);
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        Summary::of(&[1.0, f64::NAN]);
    }

    fn sample(n: usize) -> Vec<f64> {
        // Deterministic spread over ~3 orders of magnitude.
        (0..n)
            .map(|i| 0.07 + (i as f64 * 0.613).sin().abs() * 40.0 + (i % 13) as f64)
            .collect()
    }

    #[test]
    fn streaming_matches_exact_moments_and_extrema() {
        let vals = sample(500);
        let exact = Summary::of(&vals);
        let mut acc = StreamingSummary::new();
        for &v in &vals {
            acc.push(v);
        }
        let s = acc.summary();
        assert_eq!(s.n, exact.n);
        assert_eq!(s.min, exact.min);
        assert_eq!(s.max, exact.max);
        assert!((s.mean - exact.mean).abs() < 1e-9 * exact.mean.abs());
        assert!((s.std_dev - exact.std_dev).abs() < 1e-9 * exact.std_dev.abs());
    }

    #[test]
    fn streaming_quantiles_within_bucket_tolerance() {
        let vals = sample(2000);
        let exact = Summary::of(&vals);
        let mut acc = StreamingSummary::new();
        for &v in &vals {
            acc.push(v);
        }
        let s = acc.summary();
        // One log2 bucket spans a relative width of 2^-8 ≈ 0.4%; allow a
        // little slack for the cross-rank interpolation.
        assert!((s.median - exact.median).abs() < 0.01 * exact.median.abs());
        assert!((s.p95 - exact.p95).abs() < 0.01 * exact.p95.abs());
        assert!(s.median >= s.min && s.p95 <= s.max);
    }

    #[test]
    fn streaming_chunked_merge_is_bit_identical_to_itself() {
        // The determinism contract: identical chunk boundaries merged in
        // index order give bit-identical results however the partials were
        // produced.
        let vals = sample(777);
        let fold = |chunk: usize| {
            let mut merged = StreamingSummary::new();
            for c in vals.chunks(chunk) {
                let mut part = StreamingSummary::new();
                for &v in c {
                    part.push(v);
                }
                merged.merge(&part);
            }
            merged.summary()
        };
        assert_eq!(fold(64), fold(64));
        // Different chunkings agree to float tolerance (not necessarily
        // bit-identical — that is why evaluate() fixes the chunk size).
        let a = fold(64);
        let b = fold(13);
        assert!((a.mean - b.mean).abs() < 1e-9 * a.mean.abs());
    }

    #[test]
    fn streaming_constant_sample_is_exact() {
        let mut acc = StreamingSummary::new();
        for _ in 0..100 {
            acc.push(3.25);
        }
        let s = acc.summary();
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.25);
        assert_eq!(s.p95, 3.25);
    }

    #[test]
    fn streaming_single_and_zero_values() {
        let mut acc = StreamingSummary::new();
        acc.push(7.0);
        let s = acc.summary();
        assert_eq!((s.n, s.mean, s.median, s.p95), (1, 7.0, 7.0, 7.0));

        let mut zeros = StreamingSummary::new();
        zeros.push(0.0);
        zeros.push(0.0);
        let z = zeros.summary();
        assert_eq!((z.min, z.max, z.median), (0.0, 0.0, 0.0));
    }

    #[test]
    fn streaming_merge_with_empty_is_identity() {
        let mut acc = StreamingSummary::new();
        acc.push(1.0);
        acc.push(2.0);
        let before = acc.clone();
        acc.merge(&StreamingSummary::new());
        assert_eq!(acc, before);
        let mut empty = StreamingSummary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn streaming_empty_summary_panics() {
        StreamingSummary::new().summary();
    }

    #[test]
    fn quantile_is_total_on_degenerate_inputs() {
        let mut h = QuantileHistogram::default();
        // n == 0: no quantile, not a panic. Release builds used to
        // underflow `n - 1`, walk ranks past the histogram, and panic in
        // `clamp` on the empty accumulator's inverted `[∞, -∞]` range.
        assert!(h
            .quantile(0.5, 0, f64::INFINITY, f64::NEG_INFINITY)
            .is_nan());
        h.push(4.0);
        assert_eq!(h.quantile(0.5, 1, 4.0, 4.0), 4.0);
        h.push(8.0);
        // Out-of-range and NaN q: clamp into [0, 1] / answer NaN instead
        // of interpolating at ranks that do not exist.
        assert_eq!(h.quantile(-0.3, 2, 4.0, 8.0), h.quantile(0.0, 2, 4.0, 8.0));
        assert_eq!(h.quantile(1.7, 2, 4.0, 8.0), h.quantile(1.0, 2, 4.0, 8.0));
        assert!(h.quantile(f64::NAN, 2, 4.0, 8.0).is_nan());
        // Healthy queries stay inside the observed extrema.
        let v = h.quantile(0.9, 2, 4.0, 8.0);
        assert!((4.0..=8.0).contains(&v));
    }
}
