//! Summary statistics for Monte-Carlo experiment results.

use serde::{Deserialize, Serialize};

/// Summary of a sample of scalar outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Panics
    /// Panics on an empty sample or non-finite values.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        }
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Linear-interpolated percentile of a pre-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn median_interpolates() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 10.0]);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_value_degenerate() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn percentile_ordering() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&vals);
        assert!(s.median < s.p95);
        assert!(s.p95 <= s.max);
        assert!((s.p95 - 94.05).abs() < 1e-9);
    }

    #[test]
    fn cv_of_constant_sample_is_zero() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        Summary::of(&[1.0, f64::NAN]);
    }
}
