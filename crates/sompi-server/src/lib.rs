//! Planner-as-a-service: a batched multi-tenant optimization server
//! over the SOMPI library crates.
//!
//! The CLI's `plan`/`replay` subcommands and this server share one set
//! of entry points ([`service`]), so a plan answered over the socket is
//! bit-identical to one computed in-process against the same market.
//! On top of that the server adds what a daemon needs and a one-shot
//! CLI does not:
//!
//! - a typed, length-prefixed JSON wire protocol ([`proto`]);
//! - a cross-tenant, single-flight plan cache keyed by request shape ×
//!   market-view fingerprint ([`cache`]) — a burst of identical
//!   requests performs exactly one search;
//! - bounded admission with load shedding and a batched worker pool
//!   ([`server`]) — overload yields typed `Overloaded` responses, not
//!   an unbounded queue;
//! - trace-event instrumentation (`RequestReceived`, `RequestCompleted`,
//!   `RequestShed`, `CacheHit`) rendered by `sompi trace summarize`.
//!
//! Start one with `sompi serve`, talk to it with `sompi client` or any
//! implementation of the protocol in `docs/SERVER.md`.

pub mod cache;
pub mod client;
pub mod proto;
pub mod server;
pub mod service;
pub mod tournament;

pub use cache::{CacheOutcome, SharedCache, SharedPlanCache};
pub use proto::{PlanRequest, ReplayRequest, Request, Response, PROTOCOL_VERSION};
pub use server::{ServeStats, Server, ServerConfig, ServerHandle};
pub use service::{PlanReport, ReplayReport, ServiceError};
