//! The long-running planner daemon: socket accept loop, bounded
//! admission queue with load shedding, and a batched worker pool.
//!
//! Life of a request: the acceptor thread `accept()`s a connection,
//! assigns it a monotonically increasing id, and tries to enqueue it.
//! If the admission queue is at capacity the connection is *shed* — it
//! receives a typed [`Response::Overloaded`] frame and its request body
//! is discarded without ever being parsed, with a `RequestShed` trace
//! event emitted.
//! Otherwise a worker dequeues it (draining up to `batch` connections
//! per wake-up and grouping identical plan requests together), parses
//! the request, and dispatches it through [`crate::service`] — plan
//! requests via the shared single-flight [`SharedPlanCache`], so a
//! burst of identical requests performs exactly one search.
//!
//! Every stage is narrated into the server's trace recorder
//! (`RequestReceived` / `CacheHit` / `RequestCompleted` /
//! `RequestShed`), which is what `sompi trace summarize` renders as the
//! "server requests" section.

use crate::cache::{CacheOutcome, SharedPlanCache};
use crate::proto::{self, Request, Response, PROTOCOL_VERSION};
use crate::service;
use ec2_market::market::SpotMarket;
use sompi_core::pool::SearchPool;
use sompi_obs::{emit, Event, Recorder, TraceLevel};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server`]. `Default` matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads servicing requests.
    pub workers: usize,
    /// Admission-queue capacity; connections beyond it are shed.
    pub queue_cap: usize,
    /// Max connections one worker drains per wake-up. Identical plan
    /// requests inside a drained batch are grouped so the cache serves
    /// them back-to-back.
    pub batch: usize,
    /// Completed entries the cross-tenant plan cache retains.
    pub cache_capacity: usize,
    /// Artificial per-request service delay, for tests and load drills
    /// (it makes shedding reproducible without a heavyweight workload).
    pub pause_ms: u64,
    /// Exit cleanly after accepting this many connections (shed ones
    /// included). `None` runs until [`ServerHandle::stop`].
    pub max_requests: Option<u64>,
    /// Run parallel searches on one persistent [`SearchPool`] shared by
    /// every worker (no thread spawn per request). Plans are
    /// bit-identical either way; `false` is the `--no-eval-pool`
    /// ablation, which falls back to scoped threads per search.
    pub eval_pool: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".into(),
            workers: 2,
            queue_cap: 32,
            batch: 8,
            cache_capacity: 128,
            pause_ms: 0,
            max_requests: None,
            eval_pool: true,
        }
    }
}

/// Totals from one [`Server::serve`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connections accepted (serviced + shed).
    pub accepted: u64,
    /// Connections rejected with [`Response::Overloaded`].
    pub shed: u64,
}

/// One admitted connection waiting for a worker.
struct Job {
    id: u64,
    stream: TcpStream,
    enqueued: Instant,
}

/// Bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`. `try_push` fails
/// (shedding) instead of blocking the acceptor; `pop` blocks workers
/// until a job arrives or the queue closes.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    cap: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admit a job, or return it with the observed depth when full.
    fn try_push(&self, job: Job) -> Result<(), (Job, usize)> {
        let mut s = self.state.lock().expect("queue lock");
        if s.jobs.len() >= self.cap {
            let depth = s.jobs.len();
            return Err((job, depth));
        }
        s.jobs.push_back(job);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a job is available; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = s.jobs.pop_front() {
                return Some(job);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("queue lock");
        }
    }

    /// Non-blocking pop, for batch draining.
    fn try_pop(&self) -> Option<Job> {
        self.state.lock().expect("queue lock").jobs.pop_front()
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// Remote control for a running [`Server`]: carries the bound address
/// and a stop switch usable from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop accepting and drain. Safe to call twice.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The planner daemon. Construct with [`Server::bind`], run with
/// [`Server::serve`] (blocking; spawn a thread to run it in-process).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    market: Arc<SpotMarket>,
    recorder: Arc<dyn Recorder + Send + Sync>,
    cache: Arc<SharedPlanCache>,
    /// One resident search pool for the whole server lifetime, shared by
    /// every worker; `None` under `--no-eval-pool`.
    pool: Option<Arc<SearchPool>>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listen socket and pre-warm the market's trace indexes so
    /// the first request doesn't pay the lazy index build.
    pub fn bind(
        market: Arc<SpotMarket>,
        recorder: Arc<dyn Recorder + Send + Sync>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        market.build_indexes();
        let cache = Arc::new(SharedPlanCache::new(config.cache_capacity));
        // One pool for the process: created here (not per request, not
        // per worker) so every search the server ever runs shares the
        // same resident threads. Size 0 = one thread per core; the work
        // split is still decided per request by `PlanRequest::threads`.
        let pool = config.eval_pool.then(|| Arc::new(SearchPool::new(0)));
        Ok(Self {
            listener,
            addr,
            market,
            recorder,
            cache,
            pool,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// The shared plan cache (exposed for hit-count accounting in tests
    /// and for the post-run summary in `sompi serve`).
    pub fn cache(&self) -> Arc<SharedPlanCache> {
        Arc::clone(&self.cache)
    }

    /// Run the accept loop until [`ServerHandle::stop`] or the
    /// configured `max_requests`; drains the queue and joins all
    /// workers before returning.
    pub fn serve(&self) -> io::Result<ServeStats> {
        let queue = Arc::new(JobQueue::new(self.config.queue_cap));
        let mut workers = Vec::new();
        for _ in 0..self.config.workers.max(1) {
            let w = Worker {
                queue: Arc::clone(&queue),
                market: Arc::clone(&self.market),
                recorder: Arc::clone(&self.recorder),
                cache: Arc::clone(&self.cache),
                pool: self.pool.clone(),
                batch: self.config.batch.max(1),
                pause: Duration::from_millis(self.config.pause_ms),
            };
            workers.push(std::thread::spawn(move || w.run()));
        }

        let mut stats = ServeStats::default();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) => {
                    queue.close();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(e);
                }
            };
            if self.shutdown.load(Ordering::SeqCst) {
                break; // the stop() poke itself
            }
            stats.accepted += 1;
            let id = stats.accepted;
            let job = Job {
                id,
                stream,
                enqueued: Instant::now(),
            };
            if let Err((job, depth)) = queue.try_push(job) {
                stats.shed += 1;
                self.shed(job, depth);
            }
            if let Some(max) = self.config.max_requests {
                if stats.accepted >= max {
                    break;
                }
            }
        }
        queue.close();
        for w in workers {
            let _ = w.join();
        }
        Ok(stats)
    }

    /// Reject an over-capacity connection: typed `Overloaded` response,
    /// request body never parsed. Best-effort write — a client that
    /// already hung up loses nothing.
    ///
    /// After the response we half-close (FIN) and drain the socket to
    /// EOF before dropping it: closing with the client's unread request
    /// bytes still in the receive buffer would send an RST, which can
    /// destroy the in-flight `Overloaded` frame before the client reads
    /// it. The drain discards bytes without parsing and is bounded by
    /// the 1 s timeout, so a stalled client cannot hold the acceptor
    /// for long (well-behaved clients close right after reading the
    /// response, making the drain return in microseconds).
    fn shed(&self, job: Job, depth: usize) {
        emit(&*self.recorder, TraceLevel::Summary, || {
            Event::RequestShed {
                id: job.id,
                queue_depth: depth as u32,
                capacity: self.config.queue_cap as u32,
            }
        });
        let mut stream = job.stream;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        if proto::write_message(
            &mut stream,
            &Response::Overloaded {
                id: job.id,
                queue_depth: depth as u32,
                capacity: self.config.queue_cap as u32,
            },
        )
        .is_ok()
        {
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let mut sink = [0u8; 1024];
            while matches!(io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
        }
    }
}

/// Per-thread worker state.
struct Worker {
    queue: Arc<JobQueue>,
    market: Arc<SpotMarket>,
    recorder: Arc<dyn Recorder + Send + Sync>,
    cache: Arc<SharedPlanCache>,
    pool: Option<Arc<SearchPool>>,
    batch: usize,
    pause: Duration,
}

impl Worker {
    fn run(self) {
        while let Some(first) = self.queue.pop() {
            // Drain up to `batch` jobs per wake-up, then order the batch
            // so identical plan requests are adjacent: the first one
            // fills the cache and the rest are served as hits.
            let mut batch = vec![self.parse(first)];
            while batch.len() < self.batch {
                match self.queue.try_pop() {
                    Some(job) => batch.push(self.parse(job)),
                    None => break,
                }
            }
            batch.sort_by_key(|item| item.key.unwrap_or(u64::MAX));
            for item in batch {
                self.handle(item);
            }
        }
    }

    fn parse(&self, mut job: Job) -> Parsed {
        let _ = job.stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = job.stream.set_write_timeout(Some(Duration::from_secs(10)));
        let request: Result<Request, io::Error> = proto::read_message(&mut job.stream);
        let key = match &request {
            Ok(Request::Plan(req)) => Some(service::plan_request_key(&self.market, req)),
            _ => None,
        };
        Parsed { job, request, key }
    }

    fn handle(&self, item: Parsed) {
        let Parsed {
            mut job,
            request,
            key,
        } = item;
        let queue_secs = job.enqueued.elapsed().as_secs_f64();
        if !self.pause.is_zero() {
            std::thread::sleep(self.pause);
        }
        let request = match request {
            Ok(req) => req,
            Err(e) => {
                // Unreadable frame: answer with a typed error if the
                // socket still works; no trace events, since no request
                // was ever parsed out of the connection.
                let _ = proto::write_message(
                    &mut job.stream,
                    &Response::Error {
                        id: job.id,
                        kind: proto::errkind::BAD_REQUEST.into(),
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let (tenant, kind) = match &request {
            Request::Ping => ("anon".to_string(), "ping"),
            Request::Plan(req) => (req.tenant.clone(), "plan"),
            Request::Replay(req) => (req.plan.tenant.clone(), "replay"),
        };
        emit(&*self.recorder, TraceLevel::Summary, || {
            Event::RequestReceived {
                id: job.id,
                tenant: tenant.clone(),
                kind: kind.into(),
            }
        });

        let started = Instant::now();
        let mut cache_label = "none";
        let response = match request {
            Request::Ping => Response::Pong {
                version: PROTOCOL_VERSION,
            },
            Request::Plan(req) => {
                let key = key.unwrap_or_else(|| service::plan_request_key(&self.market, &req));
                let recorder: &dyn Recorder = &*self.recorder;
                let pool = self.pool.as_deref();
                let (result, outcome) = self
                    .cache
                    .get_or_compute(key, || service::plan(&self.market, &req, recorder, pool));
                cache_label = outcome.as_str();
                if outcome != CacheOutcome::Miss {
                    emit(recorder, TraceLevel::Summary, || Event::CacheHit {
                        key,
                        kind: "plan".into(),
                        coalesced: outcome == CacheOutcome::Coalesced,
                    });
                }
                match result {
                    Ok(report) => Response::Plan {
                        id: job.id,
                        cache: outcome.as_str().into(),
                        report: (*report).clone(),
                    },
                    Err(e) => Response::Error {
                        id: job.id,
                        kind: e.kind().into(),
                        message: e.to_string(),
                    },
                }
            }
            Request::Replay(req) => match service::replay(&self.market, &req, &*self.recorder) {
                Ok(report) => Response::Replay { id: job.id, report },
                Err(e) => Response::Error {
                    id: job.id,
                    kind: e.kind().into(),
                    message: e.to_string(),
                },
            },
        };
        let ok = !matches!(response, Response::Error { .. });
        let _ = proto::write_message(&mut job.stream, &response);
        let service_secs = started.elapsed().as_secs_f64();
        emit(&*self.recorder, TraceLevel::Summary, || {
            Event::RequestCompleted {
                id: job.id,
                tenant: tenant.clone(),
                kind: kind.into(),
                ok,
                cache: cache_label.into(),
                queue_secs,
                service_secs,
            }
        });
    }
}

/// A parsed (or unparseable) admitted connection, with its plan-cache
/// key precomputed for batch grouping.
struct Parsed {
    job: Job,
    request: Result<Request, io::Error>,
    key: Option<u64>,
}
