//! Request execution: the *one* implementation of "plan" and "replay"
//! shared by the CLI subcommands and the server workers.
//!
//! Both front ends translate their inputs (flags or wire messages) into
//! the same [`PlanRequest`] / [`ReplayRequest`] structs and call
//! [`plan`] / [`replay()`] here, so a plan served over the socket is
//! bit-identical to one printed by `sompi plan` against the same
//! market. That exactness invariant is what makes the cross-tenant
//! plan cache sound — and it is enforced by the server test suite.

use crate::proto::{errkind, PlanRequest, ReplayRequest};
use ec2_market::fault::{FaultInjector, FaultPlan, RetryPolicy};
use ec2_market::market::SpotMarket;
use mpi_sim::lammps::Lammps;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::profile::AppProfile;
use mpi_sim::storage::S3Store;
use replay::adaptive_exec::AdaptiveRunner;
use replay::exec::{ExecContext, ExecMode};
use replay::montecarlo::MonteCarlo;
use replay::stats::Summary;
use serde::{Deserialize, Serialize};
use sompi_core::adaptive::{AdaptiveConfig, PlanContext, ViewFingerprint};
use sompi_core::cost::evaluate_plan;
use sompi_core::model::Plan;
use sompi_core::policy::{policy_by_name, Policy};
use sompi_core::pool::SearchPool;
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;
use sompi_obs::Recorder;

/// Request-level failure. [`ServiceError::kind`] maps each variant to
/// the wire-protocol error vocabulary in [`errkind`].
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A request field failed validation (unknown app, zero procs, …).
    InvalidArgument(String),
    /// The optimizer or replay engine reported a domain error.
    Plan(String),
}

impl ServiceError {
    /// The machine-readable error category for [`crate::proto::Response::Error`].
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::InvalidArgument(_) => errkind::INVALID_ARGUMENT,
            ServiceError::Plan(_) => errkind::PLAN_FAILED,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::InvalidArgument(m) | ServiceError::Plan(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Build the application profile from request fields (the CLI's
/// `--app`/`--class`/`--procs`/`--repeats`).
pub fn app_profile(
    app: &str,
    class: &str,
    procs: u32,
    repeats: u32,
) -> Result<AppProfile, ServiceError> {
    let app = app.to_uppercase();
    if procs == 0 {
        return Err(ServiceError::InvalidArgument(
            "procs must be positive".into(),
        ));
    }
    if app == "LAMMPS" {
        return Ok(Lammps::paper().profile(procs).repeated(repeats.max(1)));
    }
    let class = match class.to_uppercase().as_str() {
        "S" => NpbClass::S,
        "W" => NpbClass::W,
        "A" => NpbClass::A,
        "B" => NpbClass::B,
        "C" => NpbClass::C,
        other => {
            return Err(ServiceError::InvalidArgument(format!(
                "unknown NPB class {other:?}"
            )))
        }
    };
    let kernel = NpbKernel::FULL_SUITE
        .into_iter()
        .find(|k| k.to_string() == app)
        .ok_or_else(|| {
            ServiceError::InvalidArgument(format!(
                "unknown app {app:?} (expected one of BT SP LU FT IS BTIO CG MG EP LAMMPS)"
            ))
        })?;
    Ok(kernel.profile(class, procs).repeated(repeats.max(1)))
}

/// Build the problem: market + app + deadline factor (a multiple of
/// Baseline Time).
pub fn build_problem(
    market: &SpotMarket,
    app: &AppProfile,
    deadline_factor: f64,
) -> Result<Problem, ServiceError> {
    if deadline_factor <= 0.0 {
        return Err(ServiceError::InvalidArgument(
            "deadline factor must be positive".into(),
        ));
    }
    let mut p = Problem::build(market, app, f64::MAX, None, S3Store::paper_2014());
    p.deadline = p.baseline_time() * deadline_factor;
    Ok(p)
}

/// The inner optimizer's configuration from request knobs.
pub fn optimizer_config(req: &PlanRequest) -> OptimizerConfig {
    OptimizerConfig {
        kappa: req.kappa as usize,
        bid_levels: req.bid_levels,
        slack: req.slack,
        threads: req.threads as usize,
        prune_dominance: req.prune_dominance,
        prune_bound: req.prune_bound,
        shared_incumbent: req.shared_incumbent,
        kernel_caps: req.kernel_caps,
        ..Default::default()
    }
}

/// Pick the planning policy by name. Thin wrapper over the one policy
/// registry in [`sompi_core::policy::policy_by_name`], so the server
/// roster and the CLI/tournament roster can never drift apart.
pub fn strategy_from(name: &str, config: OptimizerConfig) -> Result<Box<dyn Policy>, ServiceError> {
    policy_by_name(name, config).map_err(|e| ServiceError::InvalidArgument(e.to_string()))
}

/// The market view a request plans against.
pub fn view_for(market: &SpotMarket, req: &PlanRequest) -> MarketView {
    MarketView::from_market(market, req.view_start_hours, req.history_hours)
}

/// Cross-tenant plan-cache key: an FNV-1a digest of the request's
/// planning-relevant fields combined with the market-view fingerprint
/// (see `ViewFingerprint` in sompi-core). Two requests share a key iff
/// they would run the *same search over the same view* — the `tenant`
/// label is cleared before hashing, so identical problems from
/// different tenants coalesce onto one optimization.
pub fn plan_request_key(market: &SpotMarket, req: &PlanRequest) -> u64 {
    let fp = ViewFingerprint::digest(&view_for(market, req)).digest_u64();
    let mut canon = req.clone();
    canon.tenant = String::new();
    let body = serde_json::to_string(&canon).expect("request is serializable");
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in body.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    for b in fp.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The answer to a [`PlanRequest`]: the optimized plan plus its model
/// evaluation, with the problem framing needed to interpret it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// Application name (e.g. `BT.Bx200`).
    pub app: String,
    /// Absolute deadline, hours.
    pub deadline_hours: f64,
    /// Baseline Time (on-demand, no checkpoints), hours.
    pub baseline_hours: f64,
    /// Baseline cost with hourly billing, USD.
    pub baseline_cost_billed: f64,
    /// Strategy that produced the plan.
    pub strategy: String,
    /// The optimized plan.
    pub plan: Plan,
    /// Model-expected cost, USD.
    pub expected_cost: f64,
    /// Model-expected completion time, hours.
    pub expected_time: f64,
    /// Probability that every replica fails before the deadline.
    pub p_all_fail: f64,
}

/// Optimize one plan. This is the exact code path behind `sompi plan`:
/// same view construction, same policy dispatch, same model
/// evaluation — so server-served plans are bit-identical to CLI plans.
/// Pass a resident [`SearchPool`] to dispatch any parallel search onto
/// long-lived workers (the server threads one pool through every
/// worker); `None` spawns per-search threads. Plans are bit-identical
/// either way.
pub fn plan(
    market: &SpotMarket,
    req: &PlanRequest,
    recorder: &dyn Recorder,
    pool: Option<&SearchPool>,
) -> Result<PlanReport, ServiceError> {
    let app = app_profile(&req.app, &req.class, req.procs, req.repeats)?;
    let problem = build_problem(market, &app, req.deadline_factor)?;
    let view = view_for(market, req);
    let strategy = strategy_from(&req.strategy, optimizer_config(req))?;
    let mut ctx = PlanContext::new().with_recorder(recorder);
    if let Some(pool) = pool {
        ctx = ctx.with_pool(pool);
    }
    let plan = strategy
        .plan(&problem, &view, &mut ctx)
        .map_err(|e| ServiceError::Plan(e.to_string()))?;
    let eval = evaluate_plan(&plan, &view)
        .map_err(|e| ServiceError::Plan(e.to_string()))?
        .ok_or_else(|| ServiceError::Plan("plan has an unlaunchable bid".into()))?;
    Ok(PlanReport {
        app: problem.app.clone(),
        deadline_hours: problem.deadline,
        baseline_hours: problem.baseline_time(),
        baseline_cost_billed: problem.baseline_cost_billed(),
        strategy: strategy.name().to_string(),
        plan,
        expected_cost: eval.expected_cost,
        expected_time: eval.expected_time,
        p_all_fail: eval.p_all_fail,
    })
}

/// The answer to a [`ReplayRequest`]: Monte-Carlo statistics plus the
/// plan (fixed-plan replays only; adaptive runs re-plan per window).
/// The `window_hours`/`warmstart`/`bucket_reuse`/`mean_windows`/
/// `mean_plan_changes` fields are `Some` only for adaptive replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Application name.
    pub app: String,
    /// Strategy (`sompi-adaptive` for adaptive replays).
    pub strategy: String,
    /// Monte-Carlo replica count.
    pub replicas: u32,
    /// Absolute deadline, hours.
    pub deadline_hours: f64,
    /// Baseline cost with hourly billing, USD.
    pub baseline_cost_billed: f64,
    /// Total cost across replicas, USD.
    pub cost: Summary,
    /// Wall-clock time across replicas, hours.
    pub time: Summary,
    /// Fraction of replicas meeting the deadline.
    pub deadline_rate: f64,
    /// Fraction of replicas finished on spot.
    pub spot_finish_rate: f64,
    /// Mean out-of-bid terminations per replica.
    pub mean_failures: f64,
    /// Mean cost as a multiple of the billed baseline.
    pub normalized_cost: f64,
    /// The replayed plan (`None` for adaptive replays).
    pub plan: Option<Plan>,
    /// Re-planning period T_m, hours (adaptive only).
    pub window_hours: Option<f64>,
    /// Whether warm-started re-optimization was enabled (adaptive only).
    pub warmstart: Option<bool>,
    /// Whether bucket-table reuse was enabled (adaptive only).
    pub bucket_reuse: Option<bool>,
    /// Mean windows per run (adaptive only).
    pub mean_windows: Option<f64>,
    /// Mean plan changes per run (adaptive only).
    pub mean_plan_changes: Option<f64>,
}

fn injector_from(
    market: &SpotMarket,
    req: &ReplayRequest,
) -> Result<Option<FaultInjector>, ServiceError> {
    let Some(spec) = &req.faults else {
        return Ok(None);
    };
    // FaultPlan::parse errors already name the offending `--faults` term.
    let plan = FaultPlan::parse(spec, req.fault_seed).map_err(ServiceError::InvalidArgument)?;
    Ok(Some(FaultInjector::new(plan, market.horizon())))
}

fn monte_carlo(market: &SpotMarket, problem: &Problem, req: &ReplayRequest) -> MonteCarlo {
    let history = req.plan.history_hours;
    // Keep replica start offsets far enough from the trace end that a
    // badly delayed run still fits inside the recorded horizon.
    let margin = problem.baseline_time() * 4.0 + 4.0;
    let max = (market.horizon() - margin).max(history + 1.0);
    MonteCarlo::builder()
        .replicas(req.replicas as usize)
        .seed(req.mc_seed)
        .offsets(history, max)
        .build()
}

/// Plan, then Monte-Carlo replay over the market — the exact code path
/// behind `sompi replay` (and `--adaptive`). The recorder receives the
/// planning narration only; use [`traced_replay`] to additionally
/// record one deterministic execution timeline.
pub fn replay(
    market: &SpotMarket,
    req: &ReplayRequest,
    recorder: &dyn Recorder,
) -> Result<ReplayReport, ServiceError> {
    let p = &req.plan;
    let app = app_profile(&p.app, &p.class, p.procs, p.repeats)?;
    let problem = build_problem(market, &app, p.deadline_factor)?;
    let injector = injector_from(market, req)?;
    // The batched scenario-major executor only accelerates fixed-plan
    // replays: `MonteCarlo::run_plan` checks the mode. The adaptive
    // runner below drives `run_window` directly and stays scalar.
    let mut ctx = ExecContext::new().with_mode(if req.batch_replay {
        ExecMode::Batched
    } else {
        ExecMode::Scalar
    });
    if let Some(inj) = &injector {
        // Faulted checkpoint I/O retries under the standard policy.
        ctx = ctx.with_faults(inj).with_retry(RetryPolicy::default_io());
    }
    let mc = monte_carlo(market, &problem, req);
    let replicas = req.replicas as usize;

    if req.adaptive {
        let cfg = AdaptiveConfig {
            window_hours: req.window_hours,
            history_hours: p.history_hours,
            optimizer: optimizer_config(p),
            warmstart: req.warmstart,
            bucket_reuse: req.bucket_reuse,
        };
        let runner = AdaptiveRunner::new(market, cfg);
        let windows = std::sync::atomic::AtomicU64::new(0);
        let changes = std::sync::atomic::AtomicU64::new(0);
        let result = mc
            .evaluate(|start| {
                let o = runner.run(&problem, start, &ctx)?;
                windows.fetch_add(o.windows as u64, std::sync::atomic::Ordering::Relaxed);
                changes.fetch_add(o.plan_changes as u64, std::sync::atomic::Ordering::Relaxed);
                Ok(o.run)
            })
            .map_err(|e| ServiceError::Plan(e.to_string()))?;
        let normalized = result.cost.mean / problem.baseline_cost_billed();
        return Ok(ReplayReport {
            app: problem.app.clone(),
            strategy: "sompi-adaptive".into(),
            replicas: req.replicas,
            deadline_hours: problem.deadline,
            baseline_cost_billed: problem.baseline_cost_billed(),
            cost: result.cost,
            time: result.time,
            deadline_rate: result.deadline_rate,
            spot_finish_rate: result.spot_finish_rate,
            mean_failures: result.mean_failures,
            normalized_cost: normalized,
            plan: None,
            window_hours: Some(req.window_hours),
            warmstart: Some(req.warmstart),
            bucket_reuse: Some(req.bucket_reuse),
            mean_windows: Some(windows.into_inner() as f64 / replicas as f64),
            mean_plan_changes: Some(changes.into_inner() as f64 / replicas as f64),
        });
    }

    let view = view_for(market, p);
    let strategy = strategy_from(&p.strategy, optimizer_config(p))?;
    let plan = strategy
        .plan(
            &problem,
            &view,
            &mut PlanContext::new().with_recorder(recorder),
        )
        .map_err(|e| ServiceError::Plan(e.to_string()))?;
    let result = mc
        .run_plan(market, &plan, problem.deadline, &ctx)
        .map_err(|e| ServiceError::Plan(e.to_string()))?;
    let normalized = result.cost.mean / problem.baseline_cost_billed();
    Ok(ReplayReport {
        app: problem.app.clone(),
        strategy: strategy.name().to_string(),
        replicas: req.replicas,
        deadline_hours: problem.deadline,
        baseline_cost_billed: problem.baseline_cost_billed(),
        cost: result.cost,
        time: result.time,
        deadline_rate: result.deadline_rate,
        spot_finish_rate: result.spot_finish_rate,
        mean_failures: result.mean_failures,
        normalized_cost: normalized,
        plan: Some(plan),
        window_hours: None,
        warmstart: None,
        bucket_reuse: None,
        mean_windows: None,
        mean_plan_changes: None,
    })
}

/// Record one deterministic replay of `req` into `recorder` (the
/// Monte-Carlo sweep would interleave replica timelines into an
/// unreadable stream). Starts at `history + 1` hours, like the CLI's
/// `--trace-out` path. Pass the plan from a prior [`replay()`] call as
/// `plan_hint` to skip re-running the search (fixed-plan replays only;
/// adaptive replays re-plan per window regardless).
pub fn traced_replay(
    market: &SpotMarket,
    req: &ReplayRequest,
    plan_hint: Option<&Plan>,
    recorder: &dyn Recorder,
) -> Result<(), ServiceError> {
    let p = &req.plan;
    let app = app_profile(&p.app, &p.class, p.procs, p.repeats)?;
    let problem = build_problem(market, &app, p.deadline_factor)?;
    let injector = injector_from(market, req)?;
    let mut ctx = ExecContext::new();
    if let Some(inj) = &injector {
        ctx = ctx.with_faults(inj).with_retry(RetryPolicy::default_io());
    }
    let ctx = ctx.with_recorder(recorder);
    let start = p.history_hours + 1.0;
    if req.adaptive {
        let cfg = AdaptiveConfig {
            window_hours: req.window_hours,
            history_hours: p.history_hours,
            optimizer: optimizer_config(p),
            warmstart: req.warmstart,
            bucket_reuse: req.bucket_reuse,
        };
        AdaptiveRunner::new(market, cfg)
            .run(&problem, start, &ctx)
            .map_err(|e| ServiceError::Plan(e.to_string()))?;
        return Ok(());
    }
    let plan = match plan_hint {
        Some(plan) => plan.clone(),
        None => {
            let view = view_for(market, p);
            let strategy = strategy_from(&p.strategy, optimizer_config(p))?;
            strategy
                .plan(&problem, &view, &mut PlanContext::new())
                .map_err(|e| ServiceError::Plan(e.to_string()))?
        }
    };
    let runner = replay::PlanRunner::new(market, problem.deadline);
    if req.batch_replay {
        let batch = replay::BatchTables::for_plan(market, &plan)
            .map_err(|e| ServiceError::Plan(e.to_string()))?;
        let ctx = ctx.with_mode(ExecMode::Batched).with_batch(&batch);
        runner
            .run(&plan, start, &ctx)
            .map_err(|e| ServiceError::Plan(e.to_string()))?;
    } else {
        runner
            .run(&plan, start, &ctx)
            .map_err(|e| ServiceError::Plan(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec2_market::instance::InstanceCatalog;
    use ec2_market::tracegen::{MarketProfile, TraceGenerator};
    use sompi_obs::NullRecorder;

    fn market(hours: f64) -> SpotMarket {
        let catalog = InstanceCatalog::paper_2014();
        let profile = MarketProfile::paper_2014(&catalog);
        SpotMarket::generate(
            catalog,
            &TraceGenerator::new(profile, 42),
            hours,
            1.0 / 12.0,
        )
    }

    fn small_request() -> PlanRequest {
        PlanRequest {
            repeats: 50,
            kappa: 1,
            bid_levels: 2,
            ..Default::default()
        }
    }

    #[test]
    fn app_profile_matches_cli_parsing() {
        let a = app_profile("ft", "A", 64, 200).unwrap();
        assert_eq!(a.name, "FT.Ax200");
        assert_eq!(a.processes, 64);
        let l = app_profile("LAMMPS", "B", 32, 1).unwrap();
        assert!(l.name.starts_with("LAMMPS-32p"));
        assert!(app_profile("NOPE", "B", 128, 200).is_err());
        assert!(app_profile("BT", "B", 0, 200).is_err());
        assert!(app_profile("BT", "Z", 128, 200).is_err());
    }

    #[test]
    fn unknown_strategy_is_invalid_argument() {
        let Err(err) = strategy_from("magic", OptimizerConfig::default()) else {
            panic!("expected an error")
        };
        assert_eq!(err.kind(), errkind::INVALID_ARGUMENT);
        assert!(err.to_string().contains("unknown strategy"));
    }

    #[test]
    fn plan_matches_direct_strategy_call_bit_for_bit() {
        let market = market(100.0);
        let req = small_request();
        let report = plan(&market, &req, &NullRecorder, None).unwrap();

        // The long way round: build everything by hand, as `sompi plan`
        // used to, and require an identical plan and evaluation.
        let app = app_profile(&req.app, &req.class, req.procs, req.repeats).unwrap();
        let problem = build_problem(&market, &app, req.deadline_factor).unwrap();
        let view = MarketView::from_market(&market, 0.0, 48.0);
        let strategy = strategy_from("sompi", optimizer_config(&req)).unwrap();
        let direct = strategy
            .plan(&problem, &view, &mut PlanContext::new())
            .unwrap();
        assert_eq!(report.plan, direct);
        let eval = evaluate_plan(&direct, &view).unwrap().unwrap();
        assert_eq!(report.expected_cost, eval.expected_cost);
        assert_eq!(report.expected_time, eval.expected_time);
    }

    #[test]
    fn plan_request_key_ignores_tenant_but_not_problem_shape() {
        let market = market(100.0);
        let a = small_request();
        let mut b = a.clone();
        b.tenant = "another-team".into();
        assert_eq!(plan_request_key(&market, &a), plan_request_key(&market, &b));

        let mut c = a.clone();
        c.deadline_factor = 2.0;
        assert_ne!(plan_request_key(&market, &a), plan_request_key(&market, &c));

        let mut d = a.clone();
        d.history_hours = 24.0; // different market view → different key
        assert_ne!(plan_request_key(&market, &a), plan_request_key(&market, &d));
    }

    #[test]
    fn replay_is_deterministic_and_normalized() {
        let market = market(200.0);
        let req = ReplayRequest {
            plan: small_request(),
            replicas: 4,
            ..Default::default()
        };
        let a = replay(&market, &req, &NullRecorder).unwrap();
        let b = replay(&market, &req, &NullRecorder).unwrap();
        assert_eq!(a, b);
        assert!(a.normalized_cost > 0.0);
        assert!(a.plan.is_some());
        assert!(a.mean_windows.is_none());
    }

    #[test]
    fn adaptive_replay_reports_window_stats() {
        let market = market(200.0);
        let req = ReplayRequest {
            plan: small_request(),
            replicas: 2,
            adaptive: true,
            window_hours: 2.0,
            ..Default::default()
        };
        let r = replay(&market, &req, &NullRecorder).unwrap();
        assert_eq!(r.strategy, "sompi-adaptive");
        assert!(r.plan.is_none());
        assert!(r.mean_windows.unwrap() >= 1.0);
        assert_eq!(r.warmstart, Some(true));
    }

    #[test]
    fn bad_fault_spec_is_invalid_argument() {
        let market = market(100.0);
        let req = ReplayRequest {
            plan: small_request(),
            replicas: 2,
            faults: Some("gremlins=1.0".into()),
            ..Default::default()
        };
        let err = replay(&market, &req, &NullRecorder).unwrap_err();
        assert_eq!(err.kind(), errkind::INVALID_ARGUMENT);
    }
}
