//! Wire protocol for the planner service.
//!
//! Transport framing is deliberately minimal: every message — in either
//! direction — is one *frame*, a 4-byte big-endian `u32` byte length
//! followed by exactly that many bytes of UTF-8 JSON. The JSON payload
//! is a [`Request`] (client → server) or a [`Response`] (server →
//! client), serialized with serde's external enum tagging, i.e.
//! `{"Plan": {...}}`. One connection carries one request and one
//! response; clients reconnect per call.
//!
//! Schema evolution follows the trace-format convention documented in
//! `docs/OBSERVABILITY.md`: new *fields* are appended with
//! `#[serde(default)]` so older clients keep working, new *message
//! kinds* are new enum variants, and any change that would break an
//! existing reader bumps [`PROTOCOL_VERSION`]. `Ping`/`Pong` exposes
//! the version so clients can check before doing real work.
//!
//! See `docs/SERVER.md` for the full message reference with examples.

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Version of the wire protocol spoken by this build. Returned in
/// [`Response::Pong`]; bumped only on incompatible changes (renamed or
/// re-typed fields, removed variants). Additive changes keep it.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a single frame's payload, in bytes. Plans and
/// Monte-Carlo reports are a few KiB; anything near this limit indicates a
/// corrupt or malicious length prefix and the connection is dropped.
pub const MAX_FRAME_BYTES: u32 = 8 * 1024 * 1024;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one length-prefixed frame. Fails with `InvalidData` on an
/// oversized length prefix and `UnexpectedEof` on a truncated stream.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Serialize a message and write it as one frame.
pub fn write_message<T: Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let body = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(w, body.as_bytes())
}

/// Read one frame and deserialize it.
pub fn read_message<T: Deserialize>(r: &mut impl Read) -> io::Result<T> {
    let body = read_frame(r)?;
    let text = std::str::from_utf8(&body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn d_tenant() -> String {
    "anon".into()
}
fn d_app() -> String {
    "BT".into()
}
fn d_class() -> String {
    "B".into()
}
fn d_procs() -> u32 {
    128
}
fn d_repeats() -> u32 {
    200
}
fn d_deadline() -> f64 {
    1.5
}
fn d_strategy() -> String {
    "sompi".into()
}
fn d_kappa() -> u32 {
    4
}
fn d_levels() -> u32 {
    12
}
fn d_slack() -> f64 {
    0.2
}
fn d_true() -> bool {
    true
}
fn d_history() -> f64 {
    48.0
}
fn d_replicas() -> u32 {
    100
}
fn d_mc_seed() -> u64 {
    1
}
fn d_window() -> f64 {
    15.0
}
fn d_fault_seed() -> u64 {
    42
}

/// One tenant's planning request. Every field has a serde default, so
/// the minimal request is `{"Plan": {}}`; defaults mirror the CLI flag
/// defaults so `sompi plan` and a default request produce the same
/// plan. The `tenant` label is for observability and fairness
/// accounting only — it is deliberately *excluded* from the plan-cache
/// key so identical problems from different tenants share one search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Tenant label, echoed into trace events.
    #[serde(default = "d_tenant")]
    pub tenant: String,
    /// Application: an NPB kernel name (`BT`, `FT`, …) or `LAMMPS`.
    #[serde(default = "d_app")]
    pub app: String,
    /// NPB problem class (`S`/`W`/`A`/`B`/`C`); ignored for LAMMPS.
    #[serde(default = "d_class")]
    pub class: String,
    /// MPI process count.
    #[serde(default = "d_procs")]
    pub procs: u32,
    /// Back-to-back kernel repetitions (sets total work).
    #[serde(default = "d_repeats")]
    pub repeats: u32,
    /// Deadline as a multiple of Baseline Time.
    #[serde(default = "d_deadline")]
    pub deadline_factor: f64,
    /// Planning strategy (`sompi`, `on-demand`, `marathe`,
    /// `marathe-opt`, `spot-inf`, `spot-avg`).
    #[serde(default = "d_strategy")]
    pub strategy: String,
    /// Replication degree cap κ for the two-level search.
    #[serde(default = "d_kappa")]
    pub kappa: u32,
    /// Bid grid resolution per group.
    #[serde(default = "d_levels")]
    pub bid_levels: u32,
    /// Deadline slack reserved for the on-demand fallback.
    #[serde(default = "d_slack")]
    pub slack: f64,
    /// Search worker threads (0 = sequential).
    #[serde(default)]
    pub threads: u32,
    /// Exactness-preserving pruning ablation switches.
    #[serde(default = "d_true")]
    pub prune_dominance: bool,
    #[serde(default = "d_true")]
    pub prune_bound: bool,
    #[serde(default = "d_true")]
    pub shared_incumbent: bool,
    /// Caps-memoized SoA evaluation kernel (exactness-preserving;
    /// `false` is the `--no-kernel-caps` ablation).
    #[serde(default = "d_true")]
    pub kernel_caps: bool,
    /// Hours of price history visible to the planner.
    #[serde(default = "d_history")]
    pub history_hours: f64,
    /// Start of the market view window (hours into the trace).
    #[serde(default)]
    pub view_start_hours: f64,
}

impl Default for PlanRequest {
    fn default() -> Self {
        Self {
            tenant: d_tenant(),
            app: d_app(),
            class: d_class(),
            procs: d_procs(),
            repeats: d_repeats(),
            deadline_factor: d_deadline(),
            strategy: d_strategy(),
            kappa: d_kappa(),
            bid_levels: d_levels(),
            slack: d_slack(),
            threads: 0,
            prune_dominance: true,
            prune_bound: true,
            shared_incumbent: true,
            kernel_caps: true,
            history_hours: d_history(),
            view_start_hours: 0.0,
        }
    }
}

/// A Monte-Carlo replay request: plan with [`PlanRequest`] parameters,
/// then replay the plan over the server's market. `adaptive` switches
/// to the windowed Algorithm-1 runner (re-plan every `window_hours`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayRequest {
    /// The planning half of the request.
    #[serde(default)]
    pub plan: PlanRequest,
    /// Monte-Carlo replica count.
    #[serde(default = "d_replicas")]
    pub replicas: u32,
    /// Monte-Carlo seed (replica start offsets).
    #[serde(default = "d_mc_seed")]
    pub mc_seed: u64,
    /// Use the adaptive windowed runner instead of a fixed plan.
    #[serde(default)]
    pub adaptive: bool,
    /// Re-planning period T_m in hours (adaptive only).
    #[serde(default = "d_window")]
    pub window_hours: f64,
    /// Warm-start the per-window re-optimization (adaptive only).
    #[serde(default = "d_true")]
    pub warmstart: bool,
    /// Reuse unchanged per-group bucket tables (adaptive only).
    #[serde(default = "d_true")]
    pub bucket_reuse: bool,
    /// Optional fault-injection spec (same grammar as `--faults`).
    #[serde(default)]
    pub faults: Option<String>,
    /// Fault-injection seed.
    #[serde(default = "d_fault_seed")]
    pub fault_seed: u64,
    /// Replay through the batched scenario-major executor (fixed-plan
    /// replays only; the adaptive runner is always scalar). `false` is
    /// the `--no-batch-replay` ablation; results are bit-identical.
    #[serde(default = "d_true")]
    pub batch_replay: bool,
}

impl Default for ReplayRequest {
    fn default() -> Self {
        Self {
            plan: PlanRequest::default(),
            replicas: d_replicas(),
            mc_seed: d_mc_seed(),
            adaptive: false,
            window_hours: d_window(),
            warmstart: true,
            bucket_reuse: true,
            faults: None,
            fault_seed: d_fault_seed(),
            batch_replay: true,
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Optimize one plan (cacheable across tenants).
    Plan(PlanRequest),
    /// Plan and Monte-Carlo replay (never cached: replay output depends
    /// on replica seeds and fault plans, not just the market view).
    Replay(ReplayRequest),
}

/// Machine-readable error categories carried by [`Response::Error`].
/// `bad-request` — the frame was not a valid `Request`;
/// `invalid-argument` — a request field failed validation;
/// `plan-failed` — the optimizer or replay engine reported a domain
/// error; `internal` — anything else.
pub mod errkind {
    pub const BAD_REQUEST: &str = "bad-request";
    pub const INVALID_ARGUMENT: &str = "invalid-argument";
    pub const PLAN_FAILED: &str = "plan-failed";
    pub const INTERNAL: &str = "internal";
}

/// Server → client messages. `id` is the server-assigned request id,
/// matching the `RequestReceived`/`RequestCompleted` trace events for
/// that request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Answer to [`Request::Plan`]. `cache` is `"miss"`, `"hit"` or
    /// `"coalesced"` — see `docs/SERVER.md` for the exact semantics.
    Plan {
        id: u64,
        cache: String,
        report: crate::service::PlanReport,
    },
    /// Answer to [`Request::Replay`].
    Replay {
        id: u64,
        report: crate::service::ReplayReport,
    },
    /// Load-shed rejection: the admission queue was full when the
    /// connection arrived. The request body was discarded unparsed;
    /// retry with backoff. `queue_depth` is the depth observed at
    /// rejection time.
    Overloaded {
        id: u64,
        queue_depth: u32,
        capacity: u32,
    },
    /// Request-level failure; `kind` is one of the [`errkind`] strings.
    Error {
        id: u64,
        kind: String,
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err()); // EOF
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::Plan(PlanRequest {
                tenant: "team-a".into(),
                kappa: 2,
                ..Default::default()
            }),
            Request::Replay(ReplayRequest {
                replicas: 8,
                faults: Some("storm=0.02x0.5".into()),
                ..Default::default()
            }),
        ];
        for req in reqs {
            let text = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&text).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn minimal_plan_request_uses_cli_defaults() {
        let req: Request = serde_json::from_str(r#"{"Plan": {}}"#).unwrap();
        let Request::Plan(p) = req else {
            panic!("expected Plan")
        };
        assert_eq!(p, PlanRequest::default());
        assert_eq!(p.app, "BT");
        assert_eq!(p.kappa, 4);
        assert!((p.deadline_factor - 1.5).abs() < 1e-12);
    }

    #[test]
    fn error_responses_round_trip() {
        let resp = Response::Error {
            id: 7,
            kind: errkind::INVALID_ARGUMENT.into(),
            message: "procs must be positive".into(),
        };
        let text = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&text).unwrap(), resp);
        let shed = Response::Overloaded {
            id: 9,
            queue_depth: 4,
            capacity: 4,
        };
        let text = serde_json::to_string(&shed).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&text).unwrap(), shed);
    }
}
