//! Cross-tenant plan cache with single-flight coalescing.
//!
//! [`SharedPlanCache`] memoizes completed plan searches under the key
//! from [`crate::service::plan_request_key`] (request shape × market-view
//! fingerprint). It is safe to share across worker threads, and it
//! *coalesces* concurrent identical requests: the first caller for a
//! key computes while later arrivals block on a condition variable and
//! receive the same `Arc`'d result. A burst of identical-fingerprint
//! requests therefore performs **exactly one** search — the property
//! the server's cache-hit trace events exist to prove.
//!
//! This is deliberately a different animal from sompi-core's
//! `PlanCache`, which is a single-slot, tolerance-matched cache used
//! *inside* one adaptive run. Here keys are exact, entries are shared
//! across tenants and connections, and eviction is FIFO by insertion.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a lookup was satisfied. Stringified into the wire response and
/// the `CacheHit`/`RequestCompleted` trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No usable entry: this caller ran the computation.
    Miss,
    /// A completed entry was already present.
    Hit,
    /// An identical request was in flight; this caller waited for it.
    Coalesced,
}

impl CacheOutcome {
    /// The label used in responses and trace events.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Miss => "miss",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

enum Slot<V> {
    /// Some thread is computing this key; waiters sleep on the condvar.
    InFlight,
    Ready(Arc<V>),
}

struct Inner<V> {
    map: HashMap<u64, Slot<V>>,
    /// Completed keys in insertion order, for FIFO eviction.
    order: VecDeque<u64>,
}

/// A bounded, thread-safe, single-flight memo table. `V` is the cached
/// value ([`crate::service::PlanReport`] in the server).
pub struct SharedCache<V> {
    inner: Mutex<Inner<V>>,
    ready: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

/// The server's concrete cache: request key → completed plan report.
pub type SharedPlanCache = SharedCache<crate::service::PlanReport>;

impl<V> SharedCache<V> {
    /// An empty cache holding at most `capacity` completed entries
    /// (in-flight computations are not counted against the bound).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Look up `key`, running `compute` only if no completed or
    /// in-flight entry exists. Exactly one caller computes per key at a
    /// time; concurrent callers for the same key block and share the
    /// result. If `compute` fails, the error is returned to the caller
    /// that ran it, the in-flight marker is removed, and one waiter is
    /// promoted to retry the computation (so a transient failure does
    /// not poison the key).
    pub fn get_or_compute<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> (Result<Arc<V>, E>, CacheOutcome) {
        let mut waited = false;
        let mut guard = self.inner.lock().expect("cache lock");
        loop {
            match guard.map.get(&key) {
                Some(Slot::Ready(v)) => {
                    let outcome = if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        CacheOutcome::Coalesced
                    } else {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        CacheOutcome::Hit
                    };
                    return (Ok(Arc::clone(v)), outcome);
                }
                Some(Slot::InFlight) => {
                    waited = true;
                    guard = self.ready.wait(guard).expect("cache lock");
                }
                None => {
                    guard.map.insert(key, Slot::InFlight);
                    drop(guard);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let result = compute();
                    let mut guard = self.inner.lock().expect("cache lock");
                    match result {
                        Ok(v) => {
                            let v = Arc::new(v);
                            guard.map.insert(key, Slot::Ready(Arc::clone(&v)));
                            guard.order.push_back(key);
                            while guard.order.len() > self.capacity {
                                if let Some(old) = guard.order.pop_front() {
                                    guard.map.remove(&old);
                                }
                            }
                            drop(guard);
                            self.ready.notify_all();
                            // A waiter that arrived while we computed is
                            // coalesced, not a miss: it did no search.
                            return (Ok(v), CacheOutcome::Miss);
                        }
                        Err(e) => {
                            guard.map.remove(&key);
                            drop(guard);
                            self.ready.notify_all();
                            return (Err(e), CacheOutcome::Miss);
                        }
                    }
                }
            }
        }
    }

    /// Completed-entry hits served without waiting.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the computation themselves.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that waited on an in-flight computation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Completed entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").order.len()
    }

    /// Whether the cache holds no completed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    type TestCache = SharedCache<u64>;

    #[test]
    fn miss_then_hit() {
        let cache = TestCache::new(8);
        let (v, o) = cache.get_or_compute::<()>(1, || Ok(10));
        assert_eq!((*v.unwrap(), o), (10, CacheOutcome::Miss));
        let (v, o) = cache.get_or_compute::<()>(1, || Ok(99));
        assert_eq!((*v.unwrap(), o), (10, CacheOutcome::Hit));
        assert_eq!((cache.hits(), cache.misses(), cache.coalesced()), (1, 1, 0));
    }

    #[test]
    fn concurrent_identical_keys_compute_exactly_once() {
        let cache = Arc::new(TestCache::new(8));
        let computes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            handles.push(std::thread::spawn(move || {
                let (v, o) = cache.get_or_compute::<()>(7, || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Ok(70)
                });
                (*v.unwrap(), o)
            }));
        }
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "single-flight");
        assert!(outcomes.iter().all(|(v, _)| *v == 70));
        let misses = outcomes
            .iter()
            .filter(|(_, o)| *o == CacheOutcome::Miss)
            .count();
        assert_eq!(misses, 1);
        assert_eq!(
            cache.hits() + cache.coalesced(),
            15,
            "everyone else was served without searching"
        );
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let cache = Arc::new(TestCache::new(8));
        let handles: Vec<_> = (0..4u64)
            .map(|k| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let (v, _) = cache.get_or_compute::<()>(k, || Ok(k * 10));
                    *v.unwrap()
                })
            })
            .collect();
        for (k, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), k as u64 * 10);
        }
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn failed_compute_does_not_poison_the_key() {
        let cache = TestCache::new(8);
        let (r, _) = cache.get_or_compute(3, || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        let (v, o) = cache.get_or_compute::<()>(3, || Ok(33));
        assert_eq!((*v.unwrap(), o), (33, CacheOutcome::Miss));
    }

    #[test]
    fn failure_promotes_a_waiter_to_compute() {
        let cache = Arc::new(TestCache::new(8));
        let gate = Arc::new(std::sync::Barrier::new(2));
        let first = {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let (r, _) = cache.get_or_compute(5, || {
                    gate.wait(); // let the second thread queue up behind us
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    Err("flaky")
                });
                r.is_err()
            })
        };
        gate.wait();
        // By now key 5 is in flight; this call waits, sees the failure,
        // and retries as the new computer.
        let (v, _) = cache.get_or_compute::<&str>(5, || Ok(55));
        assert_eq!(*v.unwrap(), 55);
        assert!(first.join().unwrap());
    }

    #[test]
    fn capacity_evicts_oldest_entries_first() {
        let cache = TestCache::new(2);
        for k in 0..3u64 {
            cache.get_or_compute::<()>(k, || Ok(k)).0.unwrap();
        }
        assert_eq!(cache.len(), 2);
        // Key 0 was evicted; 1 and 2 remain.
        let (_, o) = cache.get_or_compute::<()>(1, || Ok(1));
        assert_eq!(o, CacheOutcome::Hit);
        let (_, o) = cache.get_or_compute::<()>(0, || Ok(0));
        assert_eq!(o, CacheOutcome::Miss);
    }
}
