//! A minimal blocking client: one connection per call, used by the
//! `sompi client` smoke mode, the CI smoke test, and the concurrency
//! suite. Real deployments can speak the protocol from any language —
//! see `docs/SERVER.md` for the framing and message reference.

use crate::proto::{self, Request, Response};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Send one request and wait for its response. Opens a fresh
/// connection (the protocol is one request per connection) with a
/// 60-second I/O timeout.
pub fn call(addr: &str, request: &Request) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    proto::write_message(&mut stream, request)?;
    proto::read_message(&mut stream)
}

/// Fire `n` copies of `request` from `n` threads at once and collect
/// every response in thread order. This is the load generator behind
/// `sompi client --burst` and the shedding tests: with a saturated
/// server, some responses come back `Overloaded`.
pub fn burst(addr: &str, request: &Request, n: usize) -> Vec<io::Result<Response>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| scope.spawn(|| call(addr, request)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    })
}
