//! The policy arena: every [`Policy`](sompi_core::policy::Policy) in
//! the roster planned and Monte-Carlo-executed over a grid of markets
//! and fault plans, in one deterministic pass.
//!
//! The tournament is the head-to-head harness behind `sompi tournament`
//! and the `tournament` bench binary. It answers the paper's core
//! comparison question — how much money does SOMPI's combined
//! checkpoint + replication + on-demand-fallback policy save over the
//! single-mechanism strategies from the literature — on equal terms:
//! every policy sees the same market view, the same Monte-Carlo replica
//! offsets, and the same fault timeline.
//!
//! Determinism contract: the report (and its JSON form) is a pure
//! function of [`TournamentConfig`]. Plans are bit-identical across
//! optimizer thread counts (the search reduces deterministically) and
//! Monte-Carlo replicas merge in chunk order, so running the same
//! tournament at `--threads 1` and `--threads 8` yields byte-identical
//! JSON. The CI determinism gate diffs exactly that.

use crate::proto::PlanRequest;
use crate::service::{
    app_profile, build_problem, optimizer_config, strategy_from, view_for, ServiceError,
};
use ec2_market::fault::{FaultInjector, FaultPlan, RetryPolicy};
use ec2_market::instance::InstanceCatalog;
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use replay::batch::BatchTables;
use replay::exec::{ExecContext, ExecMode};
use replay::montecarlo::{McResult, MonteCarlo};
use serde::{Deserialize, Serialize};
use sompi_core::adaptive::PlanContext;
use sompi_core::cost::evaluate_plan;
use sompi_core::model::Plan;
use sompi_core::pool::SearchPool;
use sompi_obs::{emit, Event, Recorder, TraceLevel};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The full tournament grid: which policies meet which markets under
/// which fault plans, and the shared problem framing they compete on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentConfig {
    /// Policy names, resolved through the one registry in
    /// [`sompi_core::policy::policy_by_name`].
    pub policies: Vec<String>,
    /// Trace-generator seeds; each seed is one synthetic market case.
    pub market_seeds: Vec<u64>,
    /// Hours of market history generated per seed.
    pub market_hours: f64,
    /// Trace sampling step, hours (the CLI's `--step`).
    pub market_step_hours: f64,
    /// Problem framing and optimizer knobs shared by every policy.
    /// The `strategy` field is ignored — the roster comes from
    /// `policies`.
    pub plan: PlanRequest,
    /// Fault-injection specs (`FaultPlan::parse` grammar); `None` is
    /// the fault-free case, labelled `"none"` in the report.
    pub fault_specs: Vec<Option<String>>,
    /// Seed for the fault-plan timeline.
    pub fault_seed: u64,
    /// Monte-Carlo replicas per cell.
    pub replicas: u32,
    /// Monte-Carlo offset seed.
    pub mc_seed: u64,
    /// Replay through the batched scenario-major executor (the default);
    /// `false` is the `--no-batch-replay` ablation. Cells are
    /// bit-identical either way.
    #[serde(default = "default_true")]
    pub batch_replay: bool,
    /// Share one Monte-Carlo result across cells whose policies produced
    /// byte-identical plans under the same (market, fault plan), and skip
    /// repeated plan searches for duplicate roster entries (the default);
    /// `false` is the `--no-replay-memo` ablation. Cells are bit-identical
    /// either way — the memo only reuses what a re-run would reproduce.
    #[serde(default = "default_true")]
    pub replay_memo: bool,
}

fn default_true() -> bool {
    true
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            policies: vec![
                "ondemand".into(),
                "no-ft".into(),
                "ckpt-only".into(),
                "app-centric".into(),
                "deadline-hedge".into(),
                "sompi".into(),
            ],
            market_seeds: vec![21],
            market_hours: 200.0,
            market_step_hours: 1.0 / 12.0,
            plan: PlanRequest::default(),
            fault_specs: vec![None],
            fault_seed: 42,
            replicas: 20,
            mc_seed: 1,
            batch_replay: true,
            replay_memo: true,
        }
    }
}

/// One cell of the tournament grid: a policy's realized economics on
/// one market × fault-plan combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentCell {
    /// Policy display name.
    pub policy: String,
    /// Market case label (`paper-2014-s<seed>`).
    pub market: String,
    /// Fault-plan label (`"none"` or the injection spec).
    pub faults: String,
    /// Model-expected cost of the policy's plan, USD (`None` when the
    /// plan is unlaunchable under the view, e.g. the all-unable
    /// ablation).
    pub expected_cost: Option<f64>,
    /// Mean realized cost across replicas, USD.
    pub mean_cost: f64,
    /// Mean realized cost over the billed on-demand baseline.
    pub normalized_cost: f64,
    /// Fraction of replicas missing the deadline.
    pub deadline_miss_rate: f64,
    /// Fraction of replicas finished by a spot group.
    pub spot_finish_rate: f64,
    /// Mean out-of-bid kills per replica.
    pub mean_failures: f64,
    /// Mean wall hours over the baseline (fastest on-demand) time.
    pub time_degradation: f64,
}

/// The tournament's answer: one [`TournamentCell`] per
/// policy × market × fault-plan, in deterministic grid order
/// (markets outermost, then policies, then fault plans).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentReport {
    /// Application name (shared by every cell).
    pub app: String,
    /// Absolute deadline, hours.
    pub deadline_hours: f64,
    /// Billed on-demand baseline cost, USD (the normalization unit).
    pub baseline_cost_billed: f64,
    /// Monte-Carlo replicas per cell.
    pub replicas: u32,
    /// Cells served from the plan-fingerprint replay memo (0 when the
    /// memo is disabled). Defaults for reports written before PR 10.
    #[serde(default)]
    pub replay_memo_hits: u64,
    /// Cells that ran a fresh Monte-Carlo replay and seeded the memo
    /// (0 when the memo is disabled).
    #[serde(default)]
    pub replay_memo_misses: u64,
    /// The grid, row-major.
    pub cells: Vec<TournamentCell>,
}

impl TournamentReport {
    /// Render the grid as a fixed-width table, one line per cell.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} — deadline {:.2} h, baseline ${:.2} billed, {} replicas/cell",
            self.app, self.deadline_hours, self.baseline_cost_billed, self.replicas
        );
        let _ = writeln!(
            s,
            "{:<15} {:<16} {:<22} {:>9} {:>9} {:>7} {:>6} {:>6} {:>6} {:>6}",
            "policy",
            "market",
            "faults",
            "E[cost]$",
            "mean$",
            "xbase",
            "miss%",
            "spot%",
            "kills",
            "xtime"
        );
        for c in &self.cells {
            let expected = match c.expected_cost {
                Some(v) => format!("{v:.2}"),
                None => "-".into(),
            };
            let _ = writeln!(
                s,
                "{:<15} {:<16} {:<22} {:>9} {:>9.2} {:>7.3} {:>5.0}% {:>5.0}% {:>6.2} {:>6.2}",
                c.policy,
                c.market,
                c.faults,
                expected,
                c.mean_cost,
                c.normalized_cost,
                c.deadline_miss_rate * 100.0,
                c.spot_finish_rate * 100.0,
                c.mean_failures,
                c.time_degradation
            );
        }
        // Name the cheapest deadline-meeting policy per market × fault
        // combination — the headline the table exists to answer.
        for (market, faults) in self.combinations() {
            let winner = self
                .cells
                .iter()
                .filter(|c| c.market == market && c.faults == faults)
                .filter(|c| c.deadline_miss_rate <= 0.0)
                .min_by(|a, b| a.mean_cost.total_cmp(&b.mean_cost));
            let _ = match winner {
                Some(w) => writeln!(
                    s,
                    "winner [{market} / {faults}]: {} at ${:.2} ({:.3}x baseline)",
                    w.policy, w.mean_cost, w.normalized_cost
                ),
                None => writeln!(
                    s,
                    "winner [{market} / {faults}]: none met the deadline in every replica"
                ),
            };
        }
        s
    }

    /// Serialize the report as pretty JSON (byte-stable across runs and
    /// thread counts — see the module docs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }

    /// Distinct (market, faults) pairs in first-appearance order.
    fn combinations(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for c in &self.cells {
            let pair = (c.market.clone(), c.faults.clone());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        pairs
    }
}

fn generate_market(seed: u64, hours: f64, step: f64) -> SpotMarket {
    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    SpotMarket::generate(catalog, &TraceGenerator::new(profile, seed), hours, step)
}

/// Run the full grid. Planning narration goes to `recorder` (one
/// [`Event::PolicyEvaluated`] per finished cell); `pool` dispatches
/// every policy's parallel search onto resident workers so the whole
/// sweep pays the thread-spawn tax zero times.
pub fn run_tournament(
    cfg: &TournamentConfig,
    recorder: &dyn Recorder,
    pool: Option<&SearchPool>,
) -> Result<TournamentReport, ServiceError> {
    if cfg.policies.is_empty() {
        return Err(ServiceError::InvalidArgument(
            "tournament needs at least one policy".into(),
        ));
    }
    if cfg.market_seeds.is_empty() {
        return Err(ServiceError::InvalidArgument(
            "tournament needs at least one market seed".into(),
        ));
    }
    if cfg.fault_specs.is_empty() {
        return Err(ServiceError::InvalidArgument(
            "tournament needs at least one fault case (use `none`)".into(),
        ));
    }
    // Resolve the whole roster up front so an unknown name fails before
    // any search runs.
    let roster: Vec<_> = cfg
        .policies
        .iter()
        .map(|name| strategy_from(name, optimizer_config(&cfg.plan)))
        .collect::<Result<_, _>>()?;

    let app = app_profile(
        &cfg.plan.app,
        &cfg.plan.class,
        cfg.plan.procs,
        cfg.plan.repeats,
    )?;
    let mut cells = Vec::new();
    let mut meta: Option<(String, f64, f64)> = None;
    let mut replay_memo_hits = 0u64;
    let mut replay_memo_misses = 0u64;
    let exec_mode = if cfg.batch_replay {
        ExecMode::Batched
    } else {
        ExecMode::Scalar
    };

    for &seed in &cfg.market_seeds {
        let market = generate_market(seed, cfg.market_hours, cfg.market_step_hours);
        let market_label = format!("paper-2014-s{seed}");
        let problem = build_problem(&market, &app, cfg.plan.deadline_factor)?;
        let view = view_for(&market, &cfg.plan);
        meta.get_or_insert_with(|| {
            (
                problem.app.clone(),
                problem.deadline,
                problem.baseline_cost_billed(),
            )
        });
        // Shared replica offsets: every policy replays from the same
        // start times, like the paper's fixed trace windows.
        let history = cfg.plan.history_hours;
        let margin = problem.baseline_time() * 4.0 + 4.0;
        let max = (market.horizon() - margin).max(history + 1.0);
        let mc = MonteCarlo::builder()
            .replicas(cfg.replicas as usize)
            .seed(cfg.mc_seed)
            .offsets(history, max)
            .build();

        // Per-market memo tables. Plans: duplicate roster entries (same
        // policy name ⇒ same deterministic search) share one search.
        // Replays: cells whose policies produced byte-identical plans
        // under the same fault case share one Monte-Carlo result — the
        // memo key is the plan's full serialized form, so only literal
        // plan equality ever collapses cells.
        let mut plan_memo: HashMap<String, (Plan, Option<f64>)> = HashMap::new();
        let mut replay_memo: HashMap<(String, usize), McResult> = HashMap::new();

        for policy in &roster {
            let policy_name = policy.name().to_string();
            let memoized_plan = if cfg.replay_memo {
                plan_memo.get(&policy_name).cloned()
            } else {
                None
            };
            let (plan, expected) = match memoized_plan {
                Some(hit) => hit,
                None => {
                    let mut pctx = PlanContext::new().with_recorder(recorder);
                    if let Some(pool) = pool {
                        pctx = pctx.with_pool(pool);
                    }
                    let plan = policy
                        .plan(&problem, &view, &mut pctx)
                        .map_err(|e| ServiceError::Plan(format!("{}: {e}", policy.name())))?;
                    let expected = evaluate_plan(&plan, &view)
                        .map_err(|e| ServiceError::Plan(e.to_string()))?
                        .map(|e| e.expected_cost);
                    if cfg.replay_memo {
                        plan_memo.insert(policy_name.clone(), (plan.clone(), expected));
                    }
                    (plan, expected)
                }
            };
            let plan_bytes = if cfg.replay_memo {
                Some(serde_json::to_string(&plan).expect("plans are serializable"))
            } else {
                None
            };

            for (spec_idx, spec) in cfg.fault_specs.iter().enumerate() {
                let injector = match spec {
                    Some(s) => {
                        let fp = FaultPlan::parse(s, cfg.fault_seed)
                            .map_err(ServiceError::InvalidArgument)?;
                        Some(FaultInjector::new(fp, market.horizon()))
                    }
                    None => None,
                };
                let mut ctx = ExecContext::new().with_mode(exec_mode);
                if let Some(inj) = &injector {
                    ctx = ctx.with_faults(inj).with_retry(RetryPolicy::default_io());
                }
                let faults_label = spec.clone().unwrap_or_else(|| "none".into());
                let memo_key = plan_bytes.as_ref().map(|pb| (pb.clone(), spec_idx));
                let result = match memo_key.as_ref().and_then(|k| replay_memo.get(k)) {
                    Some(hit) => {
                        replay_memo_hits += 1;
                        emit(recorder, TraceLevel::Summary, || Event::ReplayMemoHit {
                            policy: policy_name.clone(),
                            market: market_label.clone(),
                            faults: faults_label.clone(),
                            fingerprint: fnv1a(plan_bytes.as_deref().unwrap_or_default()),
                        });
                        hit.clone()
                    }
                    None => {
                        // Warm the death-time tables here (not inside
                        // `run_plan`) so `ReplayBatched` is emitted from
                        // this sequential loop — the Monte-Carlo workers
                        // never touch the recorder, keeping the trace
                        // byte-identical at any thread count.
                        let batch_store;
                        let ctx = if cfg.batch_replay {
                            batch_store = BatchTables::for_plan(&market, &plan)
                                .map_err(|e| ServiceError::Plan(e.to_string()))?;
                            emit(recorder, TraceLevel::Summary, || Event::ReplayBatched {
                                groups: batch_store.len() as u32,
                                replicas: u64::from(cfg.replicas),
                                tables_built: batch_store.tables_built,
                                tables_reused: batch_store.tables_reused,
                            });
                            ctx.with_batch(&batch_store)
                        } else {
                            ctx
                        };
                        let result = mc
                            .run_plan(&market, &plan, problem.deadline, &ctx)
                            .map_err(|e| ServiceError::Plan(e.to_string()))?;
                        if let Some(key) = memo_key {
                            replay_memo_misses += 1;
                            replay_memo.insert(key, result.clone());
                        }
                        result
                    }
                };
                let cell = TournamentCell {
                    policy: policy_name.clone(),
                    market: market_label.clone(),
                    faults: faults_label,
                    expected_cost: expected,
                    mean_cost: result.cost.mean,
                    normalized_cost: result.cost.mean / problem.baseline_cost_billed(),
                    deadline_miss_rate: 1.0 - result.deadline_rate,
                    spot_finish_rate: result.spot_finish_rate,
                    mean_failures: result.mean_failures,
                    time_degradation: result.time.mean / problem.baseline_time(),
                };
                emit(recorder, TraceLevel::Summary, || Event::PolicyEvaluated {
                    policy: cell.policy.clone(),
                    market: cell.market.clone(),
                    faults: cell.faults.clone(),
                    expected_cost: cell.expected_cost,
                    mean_cost: cell.mean_cost,
                    normalized_cost: cell.normalized_cost,
                    deadline_miss_rate: cell.deadline_miss_rate,
                    spot_finish_rate: cell.spot_finish_rate,
                    mean_failures: cell.mean_failures,
                    time_degradation: cell.time_degradation,
                });
                cells.push(cell);
            }
        }
    }

    let (app, deadline_hours, baseline_cost_billed) = meta.expect("at least one market ran");
    Ok(TournamentReport {
        app,
        deadline_hours,
        baseline_cost_billed,
        replicas: cfg.replicas,
        replay_memo_hits,
        replay_memo_misses,
        cells,
    })
}

/// FNV-1a digest of a plan's serialized form — the fingerprint reported
/// on [`Event::ReplayMemoHit`]. The memo itself keys on the full bytes;
/// the digest is observability-only, so a collision can mislabel a trace
/// line but never conflate two replays.
fn fnv1a(bytes: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in bytes.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sompi_obs::{NullRecorder, RingRecorder};

    fn small_config() -> TournamentConfig {
        TournamentConfig {
            market_hours: 150.0,
            replicas: 4,
            plan: PlanRequest {
                repeats: 50,
                kappa: 1,
                bid_levels: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn grid_is_policies_by_markets_by_faults_in_order() {
        let mut cfg = small_config();
        cfg.policies = vec!["ondemand".into(), "no-ft".into()];
        cfg.market_seeds = vec![21, 22];
        cfg.fault_specs = vec![None, Some("storm=0.02x0.5".into())];
        let report = run_tournament(&cfg, &NullRecorder, None).unwrap();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        // Markets outermost, then policies, then faults.
        let head: Vec<_> = report
            .cells
            .iter()
            .map(|c| (c.market.as_str(), c.policy.as_str(), c.faults.as_str()))
            .collect();
        assert_eq!(head[0], ("paper-2014-s21", "On-demand", "none"));
        assert_eq!(head[1], ("paper-2014-s21", "On-demand", "storm=0.02x0.5"));
        assert_eq!(head[2], ("paper-2014-s21", "No-FT", "none"));
        assert_eq!(head[4], ("paper-2014-s22", "On-demand", "none"));
    }

    #[test]
    fn report_is_deterministic_across_runs_and_pools() {
        let cfg = small_config();
        let a = run_tournament(&cfg, &NullRecorder, None).unwrap();
        let pool = SearchPool::new(2);
        let b = run_tournament(&cfg, &NullRecorder, Some(&pool)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn on_demand_never_misses_and_never_fails() {
        let mut cfg = small_config();
        cfg.policies = vec!["ondemand".into()];
        let report = run_tournament(&cfg, &NullRecorder, None).unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.deadline_miss_rate, 0.0);
        assert_eq!(cell.mean_failures, 0.0);
        assert_eq!(cell.spot_finish_rate, 0.0);
    }

    #[test]
    fn every_cell_emits_a_policy_evaluated_event() {
        let cfg = small_config();
        let ring = RingRecorder::new(TraceLevel::Summary, 4096);
        let report = run_tournament(&cfg, &ring, None).unwrap();
        let evaluated = ring
            .events()
            .iter()
            .filter(|e| e.kind() == "PolicyEvaluated")
            .count();
        assert_eq!(evaluated, report.cells.len());
    }

    #[test]
    fn identical_plan_cells_share_one_search_and_one_replay() {
        // Two roster entries of the same policy produce byte-identical
        // plans: the memo must run ONE plan search and ONE Monte-Carlo
        // replay, serve the duplicate from the memo, and report cells
        // that are exactly equal.
        let mut cfg = small_config();
        cfg.policies = vec!["sompi".into(), "sompi".into()];
        let ring = RingRecorder::new(TraceLevel::Summary, 4096);
        let report = run_tournament(&cfg, &ring, None).unwrap();
        let searches = ring
            .events()
            .iter()
            .filter(|e| e.kind() == "PlanSearchStarted")
            .count();
        assert_eq!(searches, 1, "duplicate roster entries must share a search");
        let memo_hits = ring
            .events()
            .iter()
            .filter(|e| e.kind() == "ReplayMemoHit")
            .count();
        assert_eq!(memo_hits, 1);
        assert_eq!(report.replay_memo_hits, 1);
        assert_eq!(report.replay_memo_misses, 1);
        assert_eq!(report.cells.len(), 2);
        let (a, b) = (&report.cells[0], &report.cells[1]);
        assert_eq!(a.mean_cost.to_bits(), b.mean_cost.to_bits());
        assert_eq!(a.normalized_cost.to_bits(), b.normalized_cost.to_bits());
        assert_eq!(a.time_degradation.to_bits(), b.time_degradation.to_bits());
    }

    #[test]
    fn memo_and_batch_ablations_are_bit_identical() {
        // All four {batch, memo} corners must agree on every cell bit —
        // the memo reuses only what a re-run would reproduce and the
        // batched executor is exact. (The bench differential suite
        // extends this across threads and fault grids.)
        let mut cfg = small_config();
        cfg.policies = vec!["ondemand".into(), "no-ft".into(), "no-ft".into()];
        cfg.fault_specs = vec![None, Some("storm=0.02x0.5,ckpt-fail=0.1".into())];
        let base = run_tournament(&cfg, &NullRecorder, None).unwrap();
        assert!(base.replay_memo_hits > 0);
        for (batch, memo) in [(true, false), (false, true), (false, false)] {
            let mut alt = cfg.clone();
            alt.batch_replay = batch;
            alt.replay_memo = memo;
            let report = run_tournament(&alt, &NullRecorder, None).unwrap();
            assert_eq!(report.cells, base.cells, "batch={batch} memo={memo}");
            if !memo {
                assert_eq!(report.replay_memo_hits, 0);
                assert_eq!(report.replay_memo_misses, 0);
            }
        }
    }

    #[test]
    fn config_with_memo_fields_absent_defaults_them_on() {
        // Schema evolution: pre-PR-10 serialized configs deserialize
        // with both toggles enabled.
        let v = serde_json::to_value(&small_config()).unwrap();
        let s = serde_json::to_string(&v).unwrap();
        assert!(s.contains("batch_replay"));
        let stripped = s
            .replace("\"batch_replay\":true,", "")
            .replace("\"replay_memo\":true,", "")
            .replace(",\"batch_replay\":true", "")
            .replace(",\"replay_memo\":true", "");
        let cfg: TournamentConfig = serde_json::from_str(&stripped).unwrap();
        assert!(cfg.batch_replay && cfg.replay_memo);
    }

    #[test]
    fn unknown_policy_fails_before_any_search() {
        let mut cfg = small_config();
        cfg.policies = vec!["sompi".into(), "magic".into()];
        let Err(err) = run_tournament(&cfg, &NullRecorder, None) else {
            panic!("unknown policy must fail the tournament");
        };
        assert!(err.to_string().contains("unknown strategy"), "{err}");
    }

    #[test]
    fn render_names_a_winner_per_combination() {
        let cfg = small_config();
        let report = run_tournament(&cfg, &NullRecorder, None).unwrap();
        let table = report.render();
        assert!(table.contains("policy"), "{table}");
        assert!(table.contains("winner [paper-2014-s21 / none]"), "{table}");
    }

    #[test]
    fn empty_roster_is_invalid() {
        let mut cfg = small_config();
        cfg.policies.clear();
        assert!(run_tournament(&cfg, &NullRecorder, None).is_err());
    }
}
