//! The policy arena: every [`Policy`](sompi_core::policy::Policy) in
//! the roster planned and Monte-Carlo-executed over a grid of markets
//! and fault plans, in one deterministic pass.
//!
//! The tournament is the head-to-head harness behind `sompi tournament`
//! and the `tournament` bench binary. It answers the paper's core
//! comparison question — how much money does SOMPI's combined
//! checkpoint + replication + on-demand-fallback policy save over the
//! single-mechanism strategies from the literature — on equal terms:
//! every policy sees the same market view, the same Monte-Carlo replica
//! offsets, and the same fault timeline.
//!
//! Determinism contract: the report (and its JSON form) is a pure
//! function of [`TournamentConfig`]. Plans are bit-identical across
//! optimizer thread counts (the search reduces deterministically) and
//! Monte-Carlo replicas merge in chunk order, so running the same
//! tournament at `--threads 1` and `--threads 8` yields byte-identical
//! JSON. The CI determinism gate diffs exactly that.

use crate::proto::PlanRequest;
use crate::service::{
    app_profile, build_problem, optimizer_config, strategy_from, view_for, ServiceError,
};
use ec2_market::fault::{FaultInjector, FaultPlan, RetryPolicy};
use ec2_market::instance::InstanceCatalog;
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use replay::exec::ExecContext;
use replay::montecarlo::MonteCarlo;
use serde::{Deserialize, Serialize};
use sompi_core::adaptive::PlanContext;
use sompi_core::cost::evaluate_plan;
use sompi_core::pool::SearchPool;
use sompi_obs::{emit, Event, Recorder, TraceLevel};
use std::fmt::Write as _;

/// The full tournament grid: which policies meet which markets under
/// which fault plans, and the shared problem framing they compete on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentConfig {
    /// Policy names, resolved through the one registry in
    /// [`sompi_core::policy::policy_by_name`].
    pub policies: Vec<String>,
    /// Trace-generator seeds; each seed is one synthetic market case.
    pub market_seeds: Vec<u64>,
    /// Hours of market history generated per seed.
    pub market_hours: f64,
    /// Trace sampling step, hours (the CLI's `--step`).
    pub market_step_hours: f64,
    /// Problem framing and optimizer knobs shared by every policy.
    /// The `strategy` field is ignored — the roster comes from
    /// `policies`.
    pub plan: PlanRequest,
    /// Fault-injection specs (`FaultPlan::parse` grammar); `None` is
    /// the fault-free case, labelled `"none"` in the report.
    pub fault_specs: Vec<Option<String>>,
    /// Seed for the fault-plan timeline.
    pub fault_seed: u64,
    /// Monte-Carlo replicas per cell.
    pub replicas: u32,
    /// Monte-Carlo offset seed.
    pub mc_seed: u64,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            policies: vec![
                "ondemand".into(),
                "no-ft".into(),
                "ckpt-only".into(),
                "app-centric".into(),
                "deadline-hedge".into(),
                "sompi".into(),
            ],
            market_seeds: vec![21],
            market_hours: 200.0,
            market_step_hours: 1.0 / 12.0,
            plan: PlanRequest::default(),
            fault_specs: vec![None],
            fault_seed: 42,
            replicas: 20,
            mc_seed: 1,
        }
    }
}

/// One cell of the tournament grid: a policy's realized economics on
/// one market × fault-plan combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentCell {
    /// Policy display name.
    pub policy: String,
    /// Market case label (`paper-2014-s<seed>`).
    pub market: String,
    /// Fault-plan label (`"none"` or the injection spec).
    pub faults: String,
    /// Model-expected cost of the policy's plan, USD (`None` when the
    /// plan is unlaunchable under the view, e.g. the all-unable
    /// ablation).
    pub expected_cost: Option<f64>,
    /// Mean realized cost across replicas, USD.
    pub mean_cost: f64,
    /// Mean realized cost over the billed on-demand baseline.
    pub normalized_cost: f64,
    /// Fraction of replicas missing the deadline.
    pub deadline_miss_rate: f64,
    /// Fraction of replicas finished by a spot group.
    pub spot_finish_rate: f64,
    /// Mean out-of-bid kills per replica.
    pub mean_failures: f64,
    /// Mean wall hours over the baseline (fastest on-demand) time.
    pub time_degradation: f64,
}

/// The tournament's answer: one [`TournamentCell`] per
/// policy × market × fault-plan, in deterministic grid order
/// (markets outermost, then policies, then fault plans).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TournamentReport {
    /// Application name (shared by every cell).
    pub app: String,
    /// Absolute deadline, hours.
    pub deadline_hours: f64,
    /// Billed on-demand baseline cost, USD (the normalization unit).
    pub baseline_cost_billed: f64,
    /// Monte-Carlo replicas per cell.
    pub replicas: u32,
    /// The grid, row-major.
    pub cells: Vec<TournamentCell>,
}

impl TournamentReport {
    /// Render the grid as a fixed-width table, one line per cell.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} — deadline {:.2} h, baseline ${:.2} billed, {} replicas/cell",
            self.app, self.deadline_hours, self.baseline_cost_billed, self.replicas
        );
        let _ = writeln!(
            s,
            "{:<15} {:<16} {:<22} {:>9} {:>9} {:>7} {:>6} {:>6} {:>6} {:>6}",
            "policy",
            "market",
            "faults",
            "E[cost]$",
            "mean$",
            "xbase",
            "miss%",
            "spot%",
            "kills",
            "xtime"
        );
        for c in &self.cells {
            let expected = match c.expected_cost {
                Some(v) => format!("{v:.2}"),
                None => "-".into(),
            };
            let _ = writeln!(
                s,
                "{:<15} {:<16} {:<22} {:>9} {:>9.2} {:>7.3} {:>5.0}% {:>5.0}% {:>6.2} {:>6.2}",
                c.policy,
                c.market,
                c.faults,
                expected,
                c.mean_cost,
                c.normalized_cost,
                c.deadline_miss_rate * 100.0,
                c.spot_finish_rate * 100.0,
                c.mean_failures,
                c.time_degradation
            );
        }
        // Name the cheapest deadline-meeting policy per market × fault
        // combination — the headline the table exists to answer.
        for (market, faults) in self.combinations() {
            let winner = self
                .cells
                .iter()
                .filter(|c| c.market == market && c.faults == faults)
                .filter(|c| c.deadline_miss_rate <= 0.0)
                .min_by(|a, b| a.mean_cost.total_cmp(&b.mean_cost));
            let _ = match winner {
                Some(w) => writeln!(
                    s,
                    "winner [{market} / {faults}]: {} at ${:.2} ({:.3}x baseline)",
                    w.policy, w.mean_cost, w.normalized_cost
                ),
                None => writeln!(
                    s,
                    "winner [{market} / {faults}]: none met the deadline in every replica"
                ),
            };
        }
        s
    }

    /// Serialize the report as pretty JSON (byte-stable across runs and
    /// thread counts — see the module docs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }

    /// Distinct (market, faults) pairs in first-appearance order.
    fn combinations(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for c in &self.cells {
            let pair = (c.market.clone(), c.faults.clone());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        pairs
    }
}

fn generate_market(seed: u64, hours: f64, step: f64) -> SpotMarket {
    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    SpotMarket::generate(catalog, &TraceGenerator::new(profile, seed), hours, step)
}

/// Run the full grid. Planning narration goes to `recorder` (one
/// [`Event::PolicyEvaluated`] per finished cell); `pool` dispatches
/// every policy's parallel search onto resident workers so the whole
/// sweep pays the thread-spawn tax zero times.
pub fn run_tournament(
    cfg: &TournamentConfig,
    recorder: &dyn Recorder,
    pool: Option<&SearchPool>,
) -> Result<TournamentReport, ServiceError> {
    if cfg.policies.is_empty() {
        return Err(ServiceError::InvalidArgument(
            "tournament needs at least one policy".into(),
        ));
    }
    if cfg.market_seeds.is_empty() {
        return Err(ServiceError::InvalidArgument(
            "tournament needs at least one market seed".into(),
        ));
    }
    if cfg.fault_specs.is_empty() {
        return Err(ServiceError::InvalidArgument(
            "tournament needs at least one fault case (use `none`)".into(),
        ));
    }
    // Resolve the whole roster up front so an unknown name fails before
    // any search runs.
    let roster: Vec<_> = cfg
        .policies
        .iter()
        .map(|name| strategy_from(name, optimizer_config(&cfg.plan)))
        .collect::<Result<_, _>>()?;

    let app = app_profile(
        &cfg.plan.app,
        &cfg.plan.class,
        cfg.plan.procs,
        cfg.plan.repeats,
    )?;
    let mut cells = Vec::new();
    let mut meta: Option<(String, f64, f64)> = None;

    for &seed in &cfg.market_seeds {
        let market = generate_market(seed, cfg.market_hours, cfg.market_step_hours);
        let market_label = format!("paper-2014-s{seed}");
        let problem = build_problem(&market, &app, cfg.plan.deadline_factor)?;
        let view = view_for(&market, &cfg.plan);
        meta.get_or_insert_with(|| {
            (
                problem.app.clone(),
                problem.deadline,
                problem.baseline_cost_billed(),
            )
        });
        // Shared replica offsets: every policy replays from the same
        // start times, like the paper's fixed trace windows.
        let history = cfg.plan.history_hours;
        let margin = problem.baseline_time() * 4.0 + 4.0;
        let max = (market.horizon() - margin).max(history + 1.0);
        let mc = MonteCarlo::builder()
            .replicas(cfg.replicas as usize)
            .seed(cfg.mc_seed)
            .offsets(history, max)
            .build();

        for policy in &roster {
            let mut pctx = PlanContext::new().with_recorder(recorder);
            if let Some(pool) = pool {
                pctx = pctx.with_pool(pool);
            }
            let plan = policy
                .plan(&problem, &view, &mut pctx)
                .map_err(|e| ServiceError::Plan(format!("{}: {e}", policy.name())))?;
            let expected = evaluate_plan(&plan, &view)
                .map_err(|e| ServiceError::Plan(e.to_string()))?
                .map(|e| e.expected_cost);

            for spec in &cfg.fault_specs {
                let injector = match spec {
                    Some(s) => {
                        let fp = FaultPlan::parse(s, cfg.fault_seed)
                            .map_err(ServiceError::InvalidArgument)?;
                        Some(FaultInjector::new(fp, market.horizon()))
                    }
                    None => None,
                };
                let mut ctx = ExecContext::new();
                if let Some(inj) = &injector {
                    ctx = ctx.with_faults(inj).with_retry(RetryPolicy::default_io());
                }
                let result = mc
                    .run_plan(&market, &plan, problem.deadline, &ctx)
                    .map_err(|e| ServiceError::Plan(e.to_string()))?;
                let cell = TournamentCell {
                    policy: policy.name().to_string(),
                    market: market_label.clone(),
                    faults: spec.clone().unwrap_or_else(|| "none".into()),
                    expected_cost: expected,
                    mean_cost: result.cost.mean,
                    normalized_cost: result.cost.mean / problem.baseline_cost_billed(),
                    deadline_miss_rate: 1.0 - result.deadline_rate,
                    spot_finish_rate: result.spot_finish_rate,
                    mean_failures: result.mean_failures,
                    time_degradation: result.time.mean / problem.baseline_time(),
                };
                emit(recorder, TraceLevel::Summary, || Event::PolicyEvaluated {
                    policy: cell.policy.clone(),
                    market: cell.market.clone(),
                    faults: cell.faults.clone(),
                    expected_cost: cell.expected_cost,
                    mean_cost: cell.mean_cost,
                    normalized_cost: cell.normalized_cost,
                    deadline_miss_rate: cell.deadline_miss_rate,
                    spot_finish_rate: cell.spot_finish_rate,
                    mean_failures: cell.mean_failures,
                    time_degradation: cell.time_degradation,
                });
                cells.push(cell);
            }
        }
    }

    let (app, deadline_hours, baseline_cost_billed) = meta.expect("at least one market ran");
    Ok(TournamentReport {
        app,
        deadline_hours,
        baseline_cost_billed,
        replicas: cfg.replicas,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sompi_obs::{NullRecorder, RingRecorder};

    fn small_config() -> TournamentConfig {
        TournamentConfig {
            market_hours: 150.0,
            replicas: 4,
            plan: PlanRequest {
                repeats: 50,
                kappa: 1,
                bid_levels: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn grid_is_policies_by_markets_by_faults_in_order() {
        let mut cfg = small_config();
        cfg.policies = vec!["ondemand".into(), "no-ft".into()];
        cfg.market_seeds = vec![21, 22];
        cfg.fault_specs = vec![None, Some("storm=0.02x0.5".into())];
        let report = run_tournament(&cfg, &NullRecorder, None).unwrap();
        assert_eq!(report.cells.len(), 2 * 2 * 2);
        // Markets outermost, then policies, then faults.
        let head: Vec<_> = report
            .cells
            .iter()
            .map(|c| (c.market.as_str(), c.policy.as_str(), c.faults.as_str()))
            .collect();
        assert_eq!(head[0], ("paper-2014-s21", "On-demand", "none"));
        assert_eq!(head[1], ("paper-2014-s21", "On-demand", "storm=0.02x0.5"));
        assert_eq!(head[2], ("paper-2014-s21", "No-FT", "none"));
        assert_eq!(head[4], ("paper-2014-s22", "On-demand", "none"));
    }

    #[test]
    fn report_is_deterministic_across_runs_and_pools() {
        let cfg = small_config();
        let a = run_tournament(&cfg, &NullRecorder, None).unwrap();
        let pool = SearchPool::new(2);
        let b = run_tournament(&cfg, &NullRecorder, Some(&pool)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn on_demand_never_misses_and_never_fails() {
        let mut cfg = small_config();
        cfg.policies = vec!["ondemand".into()];
        let report = run_tournament(&cfg, &NullRecorder, None).unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.deadline_miss_rate, 0.0);
        assert_eq!(cell.mean_failures, 0.0);
        assert_eq!(cell.spot_finish_rate, 0.0);
    }

    #[test]
    fn every_cell_emits_a_policy_evaluated_event() {
        let cfg = small_config();
        let ring = RingRecorder::new(TraceLevel::Summary, 4096);
        let report = run_tournament(&cfg, &ring, None).unwrap();
        let evaluated = ring
            .events()
            .iter()
            .filter(|e| e.kind() == "PolicyEvaluated")
            .count();
        assert_eq!(evaluated, report.cells.len());
    }

    #[test]
    fn unknown_policy_fails_before_any_search() {
        let mut cfg = small_config();
        cfg.policies = vec!["sompi".into(), "magic".into()];
        let Err(err) = run_tournament(&cfg, &NullRecorder, None) else {
            panic!("unknown policy must fail the tournament");
        };
        assert!(err.to_string().contains("unknown strategy"), "{err}");
    }

    #[test]
    fn render_names_a_winner_per_combination() {
        let cfg = small_config();
        let report = run_tournament(&cfg, &NullRecorder, None).unwrap();
        let table = report.render();
        assert!(table.contains("policy"), "{table}");
        assert!(table.contains("winner [paper-2014-s21 / none]"), "{table}");
    }

    #[test]
    fn empty_roster_is_invalid() {
        let mut cfg = small_config();
        cfg.policies.clear();
        assert!(run_tournament(&cfg, &NullRecorder, None).is_err());
    }
}
