//! End-to-end integration: market generation → problem construction →
//! optimization → trace replay, across all library crates.

use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::montecarlo::MonteCarlo;
use replay::{Finisher, PlanRunner};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{OnDemandOnly, Sompi, Strategy};
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;

fn market(seed: u64) -> SpotMarket {
    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    SpotMarket::generate(
        catalog,
        &TraceGenerator::new(profile, seed),
        260.0,
        1.0 / 12.0,
    )
}

fn paper_types(m: &SpotMarket) -> Vec<InstanceTypeId> {
    ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| m.catalog().by_name(n).unwrap())
        .collect()
}

fn problem(m: &SpotMarket, headroom: f64) -> Problem {
    let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
    let types = paper_types(m);
    let mut p = Problem::build(m, &profile, f64::MAX, Some(&types), S3Store::paper_2014());
    p.deadline = p.baseline_time() * (1.0 + headroom);
    p
}

fn small_cfg() -> OptimizerConfig {
    OptimizerConfig {
        kappa: 2,
        bid_levels: 3,
        ..Default::default()
    }
}

#[test]
fn sompi_beats_on_demand_in_replay() {
    let m = market(101);
    let p = problem(&m, 0.5);
    let view = MarketView::from_market(&m, 0.0, 48.0);
    let sompi_plan = Sompi {
        config: small_cfg(),
    }
    .plan(&p, &view, &mut PlanContext::new())
    .unwrap();
    let od_plan = OnDemandOnly
        .plan(&p, &view, &mut PlanContext::new())
        .unwrap();
    let mc = MonteCarlo {
        replicas: 24,
        seed: 9,
        offset_min: 48.0,
        offset_max: 220.0,
        threads: 4,
    };
    let ctx = replay::ExecContext::new();
    let s = mc
        .run_plan(&m, &sompi_plan, p.deadline, &ctx)
        .expect("replay succeeds");
    let o = mc
        .run_plan(&m, &od_plan, p.deadline, &ctx)
        .expect("replay succeeds");
    assert!(
        s.cost.mean < 0.8 * o.cost.mean,
        "SOMPI {} vs on-demand {}",
        s.cost.mean,
        o.cost.mean
    );
    assert!(s.deadline_rate > 0.75, "deadline rate {}", s.deadline_rate);
}

#[test]
fn replays_are_deterministic_end_to_end() {
    let m = market(102);
    let p = problem(&m, 0.5);
    let view = MarketView::from_market(&m, 0.0, 48.0);
    let plan = Sompi {
        config: small_cfg(),
    }
    .plan(&p, &view, &mut PlanContext::new())
    .unwrap();
    let mc = MonteCarlo {
        replicas: 12,
        seed: 4,
        offset_min: 48.0,
        offset_max: 200.0,
        threads: 3,
    };
    let ctx = replay::ExecContext::new();
    let a = mc
        .run_plan(&m, &plan, p.deadline, &ctx)
        .expect("replay succeeds");
    let b = mc
        .run_plan(&m, &plan, p.deadline, &ctx)
        .expect("replay succeeds");
    assert_eq!(a, b);
}

#[test]
fn every_replay_completes_the_application() {
    // Whatever the market does, the hybrid scheme finishes the job: either
    // a circle group completes or the on-demand fallback does.
    let m = market(103);
    let p = problem(&m, 0.2);
    let view = MarketView::from_market(&m, 0.0, 48.0);
    let plan = Sompi {
        config: small_cfg(),
    }
    .plan(&p, &view, &mut PlanContext::new())
    .unwrap();
    let runner = PlanRunner::new(&m, p.deadline);
    for i in 0..24 {
        let out = runner
            .run(&plan, 50.0 + i as f64 * 8.0, &replay::ExecContext::new())
            .expect("replay succeeds");
        assert!(out.total_cost > 0.0);
        assert!(out.wall_hours > 0.0);
        match out.finisher {
            Finisher::Spot(id) => {
                assert!(plan.groups.iter().any(|(g, _)| g.id == id));
            }
            Finisher::OnDemand => {
                assert!(out.od_cost > 0.0);
            }
        }
    }
}

#[test]
fn tight_deadline_plans_stay_feasible() {
    let m = market(104);
    let tight = problem(&m, 0.05);
    let view = MarketView::from_market(&m, 0.0, 48.0);
    let plan = Sompi {
        config: small_cfg(),
    }
    .plan(&tight, &view, &mut PlanContext::new())
    .unwrap();
    // The paper's constraint is on the expectation: E[Time] <= Deadline.
    let eval = sompi_core::cost::evaluate_plan(&plan, &view)
        .expect("known groups")
        .expect("launchable plan");
    assert!(
        eval.meets(tight.deadline),
        "E[Time] {} exceeds deadline {}",
        eval.expected_time,
        tight.deadline
    );
    // Slow groups may ride along as checkpoint providers, but at least one
    // chosen group must be able to finish within the deadline itself.
    if !plan.groups.is_empty() {
        assert!(
            plan.groups
                .iter()
                .any(|(g, d)| { g.completion_wall_hours(d.ckpt_interval) <= tight.deadline }),
            "no group can finish by the deadline"
        );
    }
}

#[test]
fn baseline_is_fastest_and_normalization_sane() {
    let m = market(105);
    let p = problem(&m, 0.5);
    for od in &p.on_demand {
        assert!(p.baseline_time() <= od.exec_hours + 1e-12);
    }
    assert!(p.baseline_cost_billed() >= p.baseline_cost());
}
