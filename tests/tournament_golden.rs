//! Golden-report determinism for the policy tournament.
//!
//! The tournament's JSON is a pure function of its config: the
//! committed fixture pins the exact bytes, and the thread-sweep test
//! pins the stronger invariant that optimizer thread count and pool
//! residency never change a single one of them. If a legitimate model
//! change moves the numbers, regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p sompi-bench --test tournament_golden`.

use sompi_core::pool::SearchPool;
use sompi_obs::NullRecorder;
use sompi_server::proto::PlanRequest;
use sompi_server::tournament::{run_tournament, TournamentConfig};

const GOLDEN: &str = include_str!("fixtures/tournament_golden.json");

fn golden_config(threads: u32) -> TournamentConfig {
    TournamentConfig {
        policies: vec![
            "ondemand".into(),
            "no-ft".into(),
            "ckpt-only".into(),
            "app-centric".into(),
            "deadline-hedge".into(),
            "sompi".into(),
        ],
        market_seeds: vec![21],
        market_hours: 150.0,
        market_step_hours: 1.0 / 12.0,
        fault_specs: vec![None, Some("storm=0.02x0.5".into())],
        fault_seed: 42,
        replicas: 4,
        mc_seed: 1,
        batch_replay: true,
        replay_memo: true,
        plan: PlanRequest {
            repeats: 50,
            kappa: 1,
            bid_levels: 2,
            threads,
            ..Default::default()
        },
    }
}

#[test]
fn tournament_report_matches_committed_golden_fixture() {
    let report = run_tournament(&golden_config(1), &NullRecorder, None).expect("tournament runs");
    let json = report.to_json();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/tournament_golden.json"
        );
        std::fs::write(path, format!("{json}\n")).expect("fixture is writable");
        return;
    }
    assert_eq!(
        format!("{json}\n"),
        GOLDEN,
        "tournament JSON drifted from the committed fixture \
         (UPDATE_GOLDEN=1 regenerates if the change is intentional)"
    );
}

#[test]
fn tournament_json_is_identical_across_thread_counts_and_pools() {
    let single = run_tournament(&golden_config(1), &NullRecorder, None)
        .expect("single-thread tournament runs")
        .to_json();
    let pool = SearchPool::new(4);
    let parallel = run_tournament(&golden_config(4), &NullRecorder, Some(&pool))
        .expect("pooled tournament runs")
        .to_json();
    assert_eq!(single, parallel, "thread count leaked into the report");
}
