//! Differential suite for the caps-memoized SoA evaluation kernel and
//! the persistent search worker pool (DESIGN.md §14): across three
//! markets plus the interval-grid study, every combination of
//! {caps memo on/off} × {pool on/off} × threads {1, 4, auto} must select
//! plans — and `Evaluation` fields — bit-identical to the scalar
//! single-threaded reference.
//!
//! The caps table reuses the exact left-to-right bucket summation order
//! of the scalar kernel, the SoA packing only relocates reads, and the
//! pool never decides how work is split — so any divergence here is an
//! exactness bug, not floating-point noise.

use sompi_bench::{
    build_problem, lammps_workload, npb_workload, paper_market, planning_view, stress_market,
    PROCESSES, TIGHT,
};
use sompi_core::adaptive::PlanContext;
use sompi_core::pool::SearchPool;
use sompi_core::twolevel::{OptimizedPlan, OptimizerConfig, TwoLevelOptimizer};
use sompi_core::view::MarketView;
use sompi_core::Problem;

/// The three study markets: the calibrated paper market, the drifting
/// stress market, and the paper market under the LAMMPS profile (a
/// different candidate geometry).
fn studies() -> Vec<(&'static str, Problem, MarketView)> {
    let mut out = Vec::new();
    {
        let market = paper_market(42, 200.0);
        let problem = build_problem(&market, &npb_workload(mpi_sim::npb::NpbKernel::Bt), TIGHT);
        let view = planning_view(&market);
        out.push(("paper/BT", problem, view));
    }
    {
        let market = stress_market(20140816, 200.0);
        let problem = build_problem(&market, &npb_workload(mpi_sim::npb::NpbKernel::Ft), TIGHT);
        let view = planning_view(&market);
        out.push(("stress/FT", problem, view));
    }
    {
        let market = paper_market(7, 200.0);
        let problem = build_problem(&market, &lammps_workload(PROCESSES), TIGHT);
        let view = planning_view(&market);
        out.push(("paper/LAMMPS", problem, view));
    }
    out
}

fn optimize(
    problem: &Problem,
    view: &MarketView,
    cfg: OptimizerConfig,
    pool: Option<&SearchPool>,
) -> OptimizedPlan {
    let mut ctx = PlanContext::new();
    if let Some(pool) = pool {
        ctx = ctx.with_pool(pool);
    }
    TwoLevelOptimizer::new(problem, view, cfg)
        .optimize_with(&mut ctx)
        .expect("candidates are drawn from the view's market")
}

/// Bitwise comparison of every `Evaluation` field — stricter than the
/// `PartialEq` derive, which would let `-0.0 == 0.0` slide.
fn assert_bits_identical(a: &OptimizedPlan, b: &OptimizedPlan, label: &str) {
    assert_eq!(a.plan, b.plan, "{label}: plan diverged");
    let pairs = [
        (a.evaluation.expected_cost, b.evaluation.expected_cost),
        (a.evaluation.expected_time, b.evaluation.expected_time),
        (a.evaluation.p_all_fail, b.evaluation.p_all_fail),
        (
            a.evaluation.expected_spot_cost,
            b.evaluation.expected_spot_cost,
        ),
        (a.evaluation.expected_od_cost, b.evaluation.expected_od_cost),
    ];
    for (i, (x, y)) in pairs.iter().enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: evaluation field {i} diverged ({x} vs {y})"
        );
    }
    assert_eq!(
        a.evaluations_performed, b.evaluations_performed,
        "{label}: evaluation count diverged"
    );
}

fn run_grid(base: OptimizerConfig, problem: &Problem, view: &MarketView, market_label: &str) {
    // Reference: scalar kernel, single thread, no pool — the original
    // pre-kernel code path.
    let reference = optimize(
        problem,
        view,
        OptimizerConfig {
            kernel_caps: false,
            threads: 1,
            ..base
        },
        None,
    );
    assert!(
        reference.evaluations_performed > 0,
        "{market_label}: empty search space tests nothing"
    );

    let pool = SearchPool::new(3); // deliberately mismatched with `threads`
    for caps in [true, false] {
        for pooled in [false, true] {
            for threads in [1usize, 4, 0] {
                let cfg = OptimizerConfig {
                    kernel_caps: caps,
                    threads,
                    ..base
                };
                let got = optimize(problem, view, cfg, pooled.then_some(&pool));
                assert_bits_identical(
                    &reference,
                    &got,
                    &format!("{market_label} caps={caps} pool={pooled} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn plans_are_bit_identical_across_kernel_and_pool_ablations() {
    for (label, problem, view) in &studies() {
        run_grid(
            OptimizerConfig {
                kappa: 2,
                bid_levels: 3,
                ..Default::default()
            },
            problem,
            view,
            label,
        );
    }
}

#[test]
fn interval_grid_study_is_bit_identical_too() {
    // The interval-grid ablation multiplies per-candidate work (every
    // checkpoint-interval grid point is a separate kernel call), so it
    // stresses the caps table harder than the φ(P) default.
    let (label, problem, view) = &studies()[0];
    run_grid(
        OptimizerConfig {
            kappa: 2,
            bid_levels: 2,
            interval_grid: Some(4),
            ..Default::default()
        },
        problem,
        view,
        &format!("{label}+grid"),
    );
}
