//! Differential suite for the trace-index ablation: every replay-facing
//! answer — planner output, per-replica `RunOutcome`s, Monte-Carlo
//! aggregates, adaptive timelines — must be bit-identical with the
//! sparse-table trace index enabled (the default) and disabled
//! (`--no-trace-index`). The index is a pure wall-clock optimization;
//! any divergence here is a correctness bug, not a tuning regression.

use ec2_market::fault::{FaultInjector, FaultPlan, RetryPolicy};
use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::{AdaptiveRunner, ExecContext, MonteCarlo, PlanRunner};
use sompi_core::adaptive::AdaptiveConfig;
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::model::Plan;
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;
use sompi_obs::{Event, RingRecorder, TraceLevel};

/// The same deterministic market twice: once with the trace index (the
/// default) and once with the `--no-trace-index` ablation applied.
fn market_pair(seed: u64) -> (SpotMarket, SpotMarket) {
    let cat = InstanceCatalog::paper_2014();
    let prof = MarketProfile::paper_2014(&cat);
    let indexed = SpotMarket::generate(cat, &TraceGenerator::new(prof, seed), 300.0, 1.0 / 12.0);
    let naive = indexed.clone().without_trace_index();
    assert!(indexed.trace_index_enabled() && !naive.trace_index_enabled());
    (indexed, naive)
}

fn problem_on(market: &SpotMarket) -> Problem {
    let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
    let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| market.catalog().by_name(n).unwrap())
        .collect();
    Problem::build(market, &profile, 4.0, Some(&types), S3Store::paper_2014())
}

fn plan_on(market: &SpotMarket, problem: &Problem) -> Plan {
    let view = MarketView::from_market(market, 0.0, 48.0);
    Sompi {
        config: OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..Default::default()
        },
    }
    .plan(problem, &view, &mut PlanContext::new())
    .unwrap()
}

/// Planner output is unaffected by the index (planning reads history
/// windows through the estimator, replay reads futures through the
/// query layer — both must agree with the scan-based answers).
#[test]
fn plans_are_identical_with_and_without_index() {
    let (indexed, naive) = market_pair(31);
    let p1 = problem_on(&indexed);
    let p2 = problem_on(&naive);
    assert_eq!(p1.deadline, p2.deadline);
    assert_eq!(plan_on(&indexed, &p1), plan_on(&naive, &p2));
}

/// Every per-replica `RunOutcome` matches exactly over a grid of start
/// offsets — on the clean closed-form path and on the fault-injected
/// step-walk path.
#[test]
fn run_outcomes_are_identical_with_and_without_index() {
    let (indexed, naive) = market_pair(31);
    let problem = problem_on(&indexed);
    let plan = plan_on(&indexed, &problem);
    let inj_a = FaultInjector::new(
        FaultPlan::parse("storm=0.05x0.8,ckpt-fail=0.3", 17).unwrap(),
        indexed.horizon(),
    );
    let inj_b = FaultInjector::new(
        FaultPlan::parse("storm=0.05x0.8,ckpt-fail=0.3", 17).unwrap(),
        naive.horizon(),
    );
    let clean = ExecContext::new();
    let faulty_a = ExecContext::new()
        .with_faults(&inj_a)
        .with_retry(RetryPolicy::default_io());
    let faulty_b = ExecContext::new()
        .with_faults(&inj_b)
        .with_retry(RetryPolicy::default_io());
    let ra = PlanRunner::new(&indexed, problem.deadline);
    let rb = PlanRunner::new(&naive, problem.deadline);
    for i in 0..40 {
        let start = 48.0 + i as f64 * 5.3;
        let a = ra.run(&plan, start, &clean).unwrap();
        let b = rb.run(&plan, start, &clean).unwrap();
        assert_eq!(a, b, "clean outcome diverges at start={start}");
        let a = ra.run(&plan, start, &faulty_a).unwrap();
        let b = rb.run(&plan, start, &faulty_b).unwrap();
        assert_eq!(a, b, "faulty outcome diverges at start={start}");
    }
}

/// Monte-Carlo aggregates are bit-identical across the full matrix of
/// {index on, index off} × {threads 1, 4, auto}.
#[test]
fn mc_aggregates_are_identical_across_index_and_threads() {
    let (indexed, naive) = market_pair(31);
    let problem = problem_on(&indexed);
    let plan = plan_on(&indexed, &problem);
    let ctx = ExecContext::new();
    let run = |market: &SpotMarket, threads: usize| {
        MonteCarlo::builder()
            .replicas(96)
            .seed(5)
            .offsets(48.0, 260.0)
            .threads(threads)
            .build()
            .run_plan(market, &plan, problem.deadline, &ctx)
            .expect("replay succeeds")
    };
    let reference = run(&indexed, 1);
    for threads in [1usize, 4, 0] {
        assert_eq!(
            reference,
            run(&indexed, threads),
            "indexed, threads={threads}"
        );
        assert_eq!(reference, run(&naive, threads), "naive, threads={threads}");
    }
}

/// The adaptive re-planning loop — which re-queries launch and death
/// times every window — produces the same event timeline and totals
/// either way.
#[test]
fn adaptive_timeline_is_identical_with_and_without_index() {
    let (indexed, naive) = market_pair(31);
    let config = || AdaptiveConfig {
        window_hours: 0.5,
        history_hours: 48.0,
        optimizer: OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut outs = Vec::new();
    for market in [&indexed, &naive] {
        let problem = problem_on(market);
        let ring = RingRecorder::new(TraceLevel::Detail, 4096);
        let ctx = ExecContext::new().with_recorder(&ring);
        let out = AdaptiveRunner::new(market, config())
            .run(&problem, 60.0, &ctx)
            .expect("adaptive run succeeds");
        let timeline: Vec<Event> = ring
            .take()
            .into_iter()
            .map(|mut e| {
                if let Event::PlanSelected {
                    assess_secs,
                    search_secs,
                    evals_per_sec,
                    kernel_nanos,
                    ..
                } = &mut e
                {
                    *assess_secs = 0.0;
                    *search_secs = 0.0;
                    *evals_per_sec = 0.0;
                    *kernel_nanos = 0;
                }
                e
            })
            .collect();
        outs.push((out, timeline));
    }
    let (a, ta) = &outs[0];
    let (b, tb) = &outs[1];
    assert_eq!(ta, tb, "adaptive timelines diverge between index on/off");
    assert_eq!(a.run, b.run);
    assert_eq!(a.windows, b.windows);
}
