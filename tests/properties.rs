//! Cross-crate property-based tests (proptest) over the core invariants of
//! the market substrate, the cost model and the replay engine.

use ec2_market::billing::{BillingModel, Termination};
use ec2_market::failure::FailureEstimator;
use ec2_market::histogram::PriceHistogram;
use ec2_market::index::{TraceIndex, TraceQuery};
use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::{CircleGroupId, SpotMarket};
use ec2_market::trace::SpotTrace;
use ec2_market::zone::AvailabilityZone;
use proptest::prelude::*;
use replay::PlanRunner;
use sompi_core::cost::{evaluate, GroupAssessment};
use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption, Plan};

fn arb_trace() -> impl Strategy<Value = SpotTrace> {
    prop::collection::vec(0.001f64..1.0, 12..240)
        .prop_map(|prices| SpotTrace::new(1.0 / 12.0, prices))
}

fn group(id: CircleGroupId, exec: f64, o: f64, r: f64) -> CircleGroup {
    CircleGroup {
        id,
        instances: 4,
        exec_hours: exec,
        ckpt_overhead_hours: o,
        recovery_hours: r,
    }
}

fn od_option() -> OnDemandOption {
    OnDemandOption {
        instance_type: InstanceTypeId(4),
        instances: 4,
        exec_hours: 2.0,
        unit_price: 2.0,
        recovery_hours: 0.1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The failure-rate function is always a valid sub-distribution and
    /// monotone (weakly) in the bid price.
    #[test]
    fn failure_fn_is_distribution_and_monotone(trace in arb_trace(), lo in 0.05f64..0.4) {
        let est = FailureEstimator::from_window(trace.window(0.0, f64::INFINITY));
        let hi = (lo * 2.0).min(1.0);
        let f_lo = est.failure_rate_exact(lo, 8);
        let f_hi = est.failure_rate_exact(hi, 8);
        for f in [&f_lo, &f_hi] {
            let mass: f64 = f.buckets().iter().sum::<f64>() + f.survival();
            prop_assert!((mass - 1.0).abs() < 1e-6);
            prop_assert!(f.buckets().iter().all(|p| (0.0..=1.0).contains(p)));
        }
        prop_assert!(f_hi.survival() >= f_lo.survival() - 1e-9);
    }

    /// Expected spot price never exceeds the bid's admissible range and
    /// launch delay is monotone non-increasing in the bid.
    #[test]
    fn expected_price_and_delay_sane(trace in arb_trace(), bid in 0.05f64..1.0) {
        let est = FailureEstimator::from_window(trace.window(0.0, f64::INFINITY));
        if let Some(s) = est.expected_spot_price().mean_below(bid) {
            prop_assert!(s <= bid * (1.0 + 1e-9));
            prop_assert!(s > 0.0);
        }
        let d1 = est.expected_launch_delay(bid);
        let d2 = est.expected_launch_delay(bid * 1.5);
        prop_assert!(d2 <= d1 + 1e-9);
        prop_assert!(d1 >= 0.0);
    }

    /// Billing: spot cost is non-negative, monotone in duration, and
    /// provider termination never costs more than user termination.
    #[test]
    fn billing_monotonicity(trace in arb_trace(), a in 0.0f64..5.0, d in 0.1f64..5.0) {
        let b = BillingModel::hourly();
        let c_short = b.spot_cost(&trace, a, a + d, Termination::User, 3);
        let c_long = b.spot_cost(&trace, a, a + d + 1.0, Termination::User, 3);
        prop_assert!(c_short >= 0.0);
        prop_assert!(c_long >= c_short - 1e-9);
        let c_prov = b.spot_cost(&trace, a, a + d, Termination::Provider, 3);
        prop_assert!(c_prov <= c_short + 1e-9);
    }

    /// The evaluator's probability accounting: the all-fail probability
    /// equals the product of per-group failure probabilities, and expected
    /// cost decomposes into spot + on-demand shares.
    #[test]
    fn evaluation_probability_identities(
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
        price in 0.01f64..0.5,
    ) {
        let id = CircleGroupId::new(InstanceTypeId(0), AvailabilityZone::UsEast1a);
        let mk = |s: f64| {
            let g = group(id, 3.0, 0.02, 0.1);
            let horizon = 4;
            GroupAssessment::from_parts(
                g,
                GroupDecision { bid: 1.0, ckpt_interval: 1.0 },
                price,
                s,
                vec![(1.0 - s) / horizon as f64; horizon],
                0.0,
            )
        };
        let (a1, a2) = (mk(s1), mk(s2));
        let e = evaluate(&[&a1, &a2], &od_option());
        prop_assert!((e.p_all_fail - (1.0 - s1) * (1.0 - s2)).abs() < 1e-9);
        prop_assert!(
            (e.expected_cost - (e.expected_spot_cost + e.expected_od_cost)).abs() < 1e-9
        );
        prop_assert!(e.expected_time >= 0.0);
        prop_assert!(e.expected_cost >= 0.0);
    }

    /// Replay: cost and wall time are non-negative; on a trace that never
    /// exceeds the bid, the group completes on spot and the wall equals
    /// its completion time.
    #[test]
    fn replay_on_safe_trace_completes_on_spot(
        exec in 0.5f64..6.0,
        interval_frac in 0.1f64..1.0,
    ) {
        let catalog = InstanceCatalog::paper_2014();
        let ty = catalog.by_name("m1.small").unwrap();
        let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
        let mut market = SpotMarket::new(catalog);
        market.insert(id, SpotTrace::new(0.5, vec![0.01; 100]));
        let g = group(id, exec, 0.01, 0.1);
        let interval = exec * interval_frac;
        let plan = Plan {
            groups: vec![(g, GroupDecision { bid: 0.05, ckpt_interval: interval })],
            on_demand: od_option(),
        };
        let runner = PlanRunner::new(&market, 50.0);
        let out = runner.run(&plan, 0.0, &replay::ExecContext::new()).unwrap();
        prop_assert!(matches!(out.finisher, replay::Finisher::Spot(_)));
        prop_assert_eq!(out.od_cost, 0.0);
        let expected_wall = g.completion_wall_hours(interval);
        prop_assert!((out.wall_hours - expected_wall).abs() < 1e-9);
        prop_assert!(out.spot_cost > 0.0);
    }

    /// Indexed trace queries are bit-identical to the naive scans for
    /// arbitrary traces, bids, starts and cutoffs — the exactness contract
    /// of the `--no-trace-index` ablation.
    #[test]
    fn indexed_queries_match_naive_scans(
        trace in arb_trace(),
        bid in 0.0f64..1.2,
        start in -1.0f64..25.0,
    ) {
        let ix = TraceIndex::build(&trace);
        let naive = TraceQuery::new(&trace, None);
        let fast = TraceQuery::new(&trace, Some(&ix));
        prop_assert!(fast.indexed() && !naive.indexed());
        prop_assert_eq!(
            naive.first_passage_above(start, bid),
            fast.first_passage_above(start, bid)
        );
        for cutoff in [start, start + 1.0, trace.duration(), f64::INFINITY] {
            prop_assert_eq!(
                naive.launch_time(start, bid, cutoff),
                fast.launch_time(start, bid, cutoff)
            );
        }
    }

    /// Indexed window histograms are bit-identical to the per-sample
    /// construction for arbitrary windows.
    #[test]
    fn indexed_histogram_matches_per_sample_build(
        trace in arb_trace(),
        start in 0.0f64..10.0,
        len in 0.5f64..30.0,
    ) {
        let ix = TraceIndex::build(&trace);
        let fast = TraceQuery::new(&trace, Some(&ix));
        let hi = trace.max_price() * 1.01;
        let expect = PriceHistogram::from_window(trace.window(start, len), 0.0, hi, 12);
        prop_assert_eq!(fast.histogram(start, len, 0.0, hi, 12), expect);
    }

    /// Remaining-ratio bounds and monotonicity hold for arbitrary inputs.
    #[test]
    fn remaining_ratio_bounds(
        exec in 0.5f64..20.0,
        interval in 0.05f64..25.0,
        t1 in 0.0f64..20.0,
        dt in 0.0f64..5.0,
    ) {
        let id = CircleGroupId::new(InstanceTypeId(0), AvailabilityZone::UsEast1a);
        let g = group(id, exec, 0.02, 0.1);
        let r1 = g.remaining_ratio(t1, interval);
        let r2 = g.remaining_ratio(t1 + dt, interval);
        prop_assert!((0.0..=1.0).contains(&r1));
        prop_assert!(r2 <= r1 + 1e-12);
    }
}

/// Assert every query family agrees between the naive and indexed paths
/// over a grid of bids, starts and cutoffs.
fn assert_index_agrees(trace: &SpotTrace, bids: &[f64], starts: &[f64]) {
    let ix = TraceIndex::build(trace);
    let naive = TraceQuery::new(trace, None);
    let fast = TraceQuery::new(trace, Some(&ix));
    for &bid in bids {
        for &start in starts {
            assert_eq!(
                naive.first_passage_above(start, bid),
                fast.first_passage_above(start, bid),
                "first_passage_above(start={start}, bid={bid})"
            );
            for cutoff in [start - 1.0, start + 0.25, trace.duration(), f64::INFINITY] {
                assert_eq!(
                    naive.launch_time(start, bid, cutoff),
                    fast.launch_time(start, bid, cutoff),
                    "launch_time(start={start}, bid={bid}, cutoff={cutoff})"
                );
            }
        }
    }
}

#[test]
fn index_agrees_on_constant_price_trace() {
    let trace = SpotTrace::new(1.0 / 12.0, vec![0.1; 60]);
    // Bids below, exactly at, and above the constant price.
    assert_index_agrees(&trace, &[0.05, 0.1, 0.2], &[0.0, 0.5, 3.0, 4.9, 5.0, 80.0]);
    let ix = TraceIndex::build(&trace);
    let fast = TraceQuery::new(&trace, Some(&ix));
    // A bid at the constant price never passes above it but launches at once.
    assert_eq!(fast.first_passage_above(0.0, 0.1), None);
    assert_eq!(fast.launch_time(0.25, 0.1, f64::INFINITY), Some(0.25));
}

#[test]
fn index_agrees_outside_the_price_range() {
    let trace = SpotTrace::new(0.5, (0..48).map(|i| 0.1 + 0.01 * (i % 7) as f64).collect());
    // Bid below the minimum: never launches; above the maximum: never dies.
    assert_index_agrees(&trace, &[0.01, 0.5], &[0.0, 1.3, 11.0, 23.9]);
    let ix = TraceIndex::build(&trace);
    let fast = TraceQuery::new(&trace, Some(&ix));
    assert_eq!(fast.launch_time(0.0, 0.01, f64::INFINITY), None);
    assert_eq!(fast.first_passage_above(0.0, 0.5), None);
}

#[test]
fn index_agrees_past_trace_end_and_on_single_sample() {
    let trace = SpotTrace::new(0.5, vec![0.1, 0.3, 0.2, 0.05]);
    // Starts at, beyond, and far beyond the trace end.
    assert_index_agrees(&trace, &[0.04, 0.1, 0.25], &[1.9, 2.0, 2.1, 100.0]);

    let single = SpotTrace::new(1.0, vec![0.3]);
    assert_index_agrees(&single, &[0.1, 0.3, 0.9], &[-1.0, 0.0, 0.5, 1.0, 2.0]);
    let ix = TraceIndex::build(&single);
    assert_eq!(ix.len(), 1);
    assert_eq!(ix.range_max(0, 1), 0.3);
    assert_eq!(ix.range_min(0, 1), 0.3);
}
