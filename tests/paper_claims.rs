//! The paper's headline qualitative claims, checked end to end in replay.
//! These are the "shape" assertions of the reproduction: orderings and
//! regimes, not absolute dollars.

use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::profile::AppProfile;
use mpi_sim::storage::S3Store;
use replay::montecarlo::{McResult, MonteCarlo};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Marathe, MaratheOpt, OnDemandOnly, Sompi, SpotInf, Strategy};
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;

fn market() -> SpotMarket {
    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    SpotMarket::generate(
        catalog,
        &TraceGenerator::new(profile, 777),
        300.0,
        1.0 / 12.0,
    )
}

fn paper_types(m: &SpotMarket) -> Vec<InstanceTypeId> {
    ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| m.catalog().by_name(n).unwrap())
        .collect()
}

fn scaled(kernel: NpbKernel) -> AppProfile {
    // Repeat to a ~1 h fastest execution, as the experiments do.
    let p = kernel.profile(NpbClass::B, 128);
    let cat = InstanceCatalog::paper_2014();
    let per_run = cat
        .iter()
        .map(|(id, _)| {
            mpi_sim::cluster::ClusterSpec::for_processes(&cat, id, 128)
                .estimate(&cat, &p)
                .total_hours()
        })
        .fold(f64::INFINITY, f64::min);
    p.repeated((1.0 / per_run).ceil().max(1.0) as u32)
}

fn run(m: &SpotMarket, kernel: NpbKernel, headroom: f64, s: &dyn Strategy) -> (McResult, Problem) {
    let profile = scaled(kernel);
    let types = paper_types(m);
    let mut p = Problem::build(m, &profile, f64::MAX, Some(&types), S3Store::paper_2014());
    p.deadline = p.baseline_time() * (1.0 + headroom);
    let view = MarketView::from_market(m, 0.0, 48.0);
    let plan = s.plan(&p, &view, &mut PlanContext::new()).unwrap();
    let mc = MonteCarlo {
        replicas: 24,
        seed: 1,
        offset_min: 48.0,
        offset_max: 260.0,
        threads: 4,
    };
    (
        mc.run_plan(m, &plan, p.deadline, &replay::ExecContext::new())
            .expect("replay succeeds"),
        p,
    )
}

fn sompi() -> Sompi {
    Sompi {
        config: OptimizerConfig {
            kappa: 3,
            bid_levels: 4,
            ..Default::default()
        },
    }
}

#[test]
fn headline_ordering_for_bt() {
    // Paper Figure 5: SOMPI < Marathe-Opt <= Marathe < On-demand.
    let m = market();
    let (od, _) = run(&m, NpbKernel::Bt, 0.5, &OnDemandOnly);
    let (mar, _) = run(&m, NpbKernel::Bt, 0.5, &Marathe);
    let (opt, _) = run(&m, NpbKernel::Bt, 0.5, &MaratheOpt);
    let (s, _) = run(&m, NpbKernel::Bt, 0.5, &sompi());
    assert!(
        s.cost.mean < opt.cost.mean,
        "SOMPI {} vs Opt {}",
        s.cost.mean,
        opt.cost.mean
    );
    assert!(
        opt.cost.mean <= mar.cost.mean * 1.01,
        "Opt {} vs Marathe {}",
        opt.cost.mean,
        mar.cost.mean
    );
    assert!(
        mar.cost.mean < od.cost.mean,
        "Marathe {} vs OD {}",
        mar.cost.mean,
        od.cost.mean
    );
}

#[test]
fn marathe_equals_marathe_opt_under_tight_deadline() {
    // Paper: "for tight deadline requirement, Marathe and Marathe-Opt have
    // equal monetary cost" — both are forced onto cc2.8xlarge.
    let m = market();
    let (mar, _) = run(&m, NpbKernel::Bt, 0.05, &Marathe);
    let (opt, _) = run(&m, NpbKernel::Bt, 0.05, &MaratheOpt);
    let rel = (mar.cost.mean - opt.cost.mean).abs() / mar.cost.mean;
    assert!(
        rel < 0.05,
        "Marathe {} vs Opt {} differ {rel}",
        mar.cost.mean,
        opt.cost.mean
    );
}

#[test]
fn marathe_opt_beats_marathe_under_loose_deadline_for_compute() {
    // Paper: "under loose deadline, the monetary cost of Marathe is 36%
    // larger than Marathe-Opt" for computation-intensive apps.
    let m = market();
    let (mar, _) = run(&m, NpbKernel::Lu, 0.5, &Marathe);
    let (opt, _) = run(&m, NpbKernel::Lu, 0.5, &MaratheOpt);
    assert!(
        opt.cost.mean < 0.9 * mar.cost.mean,
        "Opt {} should clearly beat Marathe {}",
        opt.cost.mean,
        mar.cost.mean
    );
}

#[test]
fn cc2_dominates_communication_intensive_plans() {
    // Paper: "the best instance type to execute communication-intensive
    // applications is cc2.8xlarge".
    let m = market();
    let profile = scaled(NpbKernel::Ft);
    let types = paper_types(&m);
    let mut p = Problem::build(&m, &profile, f64::MAX, Some(&types), S3Store::paper_2014());
    p.deadline = p.baseline_time() * 1.5;
    let view = MarketView::from_market(&m, 0.0, 48.0);
    let plan = sompi().plan(&p, &view, &mut PlanContext::new()).unwrap();
    let cc2 = m.catalog().by_name("cc2.8xlarge").unwrap();
    assert!(
        plan.groups.iter().all(|(g, _)| g.id.instance_type == cc2),
        "FT plan should be all cc2.8xlarge: {:?}",
        plan.groups.iter().map(|(g, _)| g.id).collect::<Vec<_>>()
    );
}

#[test]
fn io_intensive_prefers_many_small_instances() {
    // Paper: for BTIO, m1.small/m1.medium beat cc2.8xlarge in both cost
    // and performance (aggregate disk parallelism).
    let m = market();
    let profile = scaled(NpbKernel::Btio);
    let types = paper_types(&m);
    let p = Problem::build(&m, &profile, f64::MAX, Some(&types), S3Store::paper_2014());
    let cc2 = m.catalog().by_name("cc2.8xlarge").unwrap();
    let cc2_time = p
        .on_demand
        .iter()
        .find(|o| o.instance_type == cc2)
        .unwrap()
        .exec_hours;
    for name in ["m1.small", "m1.medium"] {
        let ty = m.catalog().by_name(name).unwrap();
        let o = p.on_demand.iter().find(|o| o.instance_type == ty).unwrap();
        assert!(o.exec_hours < cc2_time, "{name} should outrun cc2 on BTIO");
        assert!(o.full_cost() < 2.0 * o.exec_hours * 128.0 * 0.087, "sanity");
    }
}

#[test]
fn spot_inf_reduces_cost_but_with_higher_variance_than_sompi() {
    // Paper Figure 6: Spot-Inf < On-demand, SOMPI < Spot-Inf, and
    // Spot-Inf's variance far exceeds SOMPI's.
    let m = market();
    let (od, _) = run(&m, NpbKernel::Bt, 0.5, &OnDemandOnly);
    let (inf, _) = run(&m, NpbKernel::Bt, 0.5, &SpotInf);
    let (s, _) = run(&m, NpbKernel::Bt, 0.5, &sompi());
    assert!(
        inf.cost.mean < od.cost.mean,
        "Spot-Inf {} vs OD {}",
        inf.cost.mean,
        od.cost.mean
    );
    // SOMPI searches a superset of Spot-Inf's configurations, so it can at
    // worst tie (it does tie when the safest single group is also optimal).
    assert!(
        s.cost.mean <= inf.cost.mean * 1.02,
        "SOMPI {} vs Spot-Inf {}",
        s.cost.mean,
        inf.cost.mean
    );
}
