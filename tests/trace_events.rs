//! Golden-trace tests: each instrumented path emits exactly the events the
//! observability contract (docs/OBSERVABILITY.md) promises, with field
//! values tied back to the returned outcome — not merely "something was
//! recorded".

use ec2_market::fault::{FaultInjector, FaultPlan, RetryPolicy};
use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::{CircleGroupId, SpotMarket};
use ec2_market::trace::SpotTrace;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use ec2_market::zone::AvailabilityZone;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::{AdaptiveRunner, ExecContext, PlanRunner};
use sompi_core::adaptive::AdaptiveConfig;
use sompi_core::adaptive::PlanContext;
use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption, Plan};
use sompi_core::pool::SearchPool;
use sompi_core::problem::Problem;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::view::MarketView;
use sompi_obs::{parse_jsonl, Event, JsonlRecorder, RingRecorder, TraceLevel};
use std::sync::{Arc, Mutex};

fn seeded_market() -> (SpotMarket, Problem) {
    let cat = InstanceCatalog::paper_2014();
    let prof = MarketProfile::paper_2014(&cat);
    let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 31), 300.0, 1.0 / 12.0);
    let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
    let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| market.catalog().by_name(n).unwrap())
        .collect();
    let problem = Problem::build(&market, &profile, 4.0, Some(&types), S3Store::paper_2014());
    (market, problem)
}

/// One-type market with a hand-written trace for exact assertions.
fn tiny_market(prices: &[f64]) -> (SpotMarket, CircleGroupId) {
    let cat = InstanceCatalog::paper_2014();
    let ty = cat.by_name("m1.small").unwrap();
    let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
    let mut m = SpotMarket::new(cat);
    m.insert(id, SpotTrace::new(1.0, prices.to_vec()));
    (m, id)
}

fn od() -> OnDemandOption {
    OnDemandOption {
        instance_type: InstanceTypeId(4),
        instances: 1,
        exec_hours: 4.0,
        unit_price: 2.0,
        recovery_hours: 0.5,
    }
}

#[test]
fn twolevel_search_emits_golden_sequence() {
    let (market, problem) = seeded_market();
    let view = MarketView::from_market(&market, 0.0, 48.0);
    let config = OptimizerConfig {
        kappa: 2,
        bid_levels: 3,
        threads: 1,
        ..Default::default()
    };
    let ring = RingRecorder::new(TraceLevel::Detail, 64);
    let out = TwoLevelOptimizer::new(&problem, &view, config)
        .optimize_with(&mut PlanContext::new().with_recorder(&ring))
        .unwrap();
    let events = ring.take();

    // Exactly: PlanSearchStarted, one SubsetEvaluated per worker (1 here),
    // PlanSelected — in that order.
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(
        kinds,
        ["PlanSearchStarted", "SubsetEvaluated", "PlanSelected"],
        "{kinds:?}"
    );

    let Event::PlanSearchStarted {
        kappa,
        bid_levels,
        threads,
        subsets,
        ..
    } = &events[0]
    else {
        panic!("first event");
    };
    assert_eq!((*kappa, *bid_levels, *threads), (2, 3, 1));
    assert!(*subsets > 0);

    let Event::SubsetEvaluated {
        worker,
        evaluations,
        feasible,
        best_cost,
        phi_intervals,
        ..
    } = &events[1]
    else {
        panic!("second event");
    };
    assert_eq!(*worker, 0);
    assert!(*evaluations > 0 && *feasible <= *evaluations);
    // The single worker's incumbent is the final plan (threads = 1), so
    // its best cost and φ intervals must match the returned plan exactly.
    assert_eq!(*best_cost, Some(out.evaluation.expected_cost));
    let plan_intervals: Vec<f64> = out
        .plan
        .groups
        .iter()
        .map(|(_, d)| d.ckpt_interval)
        .collect();
    assert_eq!(*phi_intervals, plan_intervals);

    let Event::PlanSelected {
        source,
        groups,
        expected_cost,
        expected_time,
        ..
    } = &events[2]
    else {
        panic!("third event");
    };
    assert_eq!(source, "spot");
    assert_eq!(*groups as usize, out.plan.groups.len());
    assert_eq!(*expected_cost, out.evaluation.expected_cost);
    assert_eq!(*expected_time, out.evaluation.expected_time);
}

#[test]
fn pooled_search_emits_pool_event_and_kernel_stats() {
    let (market, problem) = seeded_market();
    let view = MarketView::from_market(&market, 0.0, 48.0);
    let config = OptimizerConfig {
        kappa: 2,
        bid_levels: 3,
        threads: 2,
        ..Default::default()
    };
    let pool = SearchPool::new(2);
    let ring = RingRecorder::new(TraceLevel::Summary, 64);
    let out = TwoLevelOptimizer::new(&problem, &view, config)
        .optimize_with(&mut PlanContext::new().with_recorder(&ring).with_pool(&pool))
        .unwrap();
    let events = ring.take();

    // Summary level: the detail SubsetEvaluated events are suppressed,
    // and the pool dispatch announces itself between start and selection.
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(
        kinds,
        ["PlanSearchStarted", "SearchPoolUsed", "PlanSelected"],
        "{kinds:?}"
    );

    let Event::SearchPoolUsed {
        pool_id,
        search_seq,
        workers,
        jobs,
    } = &events[1]
    else {
        panic!("second event");
    };
    assert_eq!(*pool_id, pool.id());
    assert_eq!(*search_seq, 1, "first search on this pool");
    assert_eq!(*workers, 2);
    assert_eq!(*jobs, 2, "chunk count comes from config.threads");

    let Event::PlanSelected {
        expected_cost,
        evaluations,
        evals_per_sec,
        kernel_nanos,
        ..
    } = &events[2]
    else {
        panic!("third event");
    };
    assert_eq!(*expected_cost, out.evaluation.expected_cost);
    assert!(*evaluations > 0);
    assert!(*kernel_nanos > 0, "kernel time must be accounted");
    assert!(*evals_per_sec > 0.0);
}

#[test]
fn recorded_search_matches_unrecorded_search() {
    let (market, problem) = seeded_market();
    let view = MarketView::from_market(&market, 0.0, 48.0);
    let config = OptimizerConfig {
        kappa: 2,
        bid_levels: 3,
        ..Default::default()
    };
    let ring = RingRecorder::new(TraceLevel::Detail, 64);
    let a = TwoLevelOptimizer::new(&problem, &view, config)
        .optimize()
        .unwrap();
    let b = TwoLevelOptimizer::new(&problem, &view, config)
        .optimize_with(&mut PlanContext::new().with_recorder(&ring))
        .unwrap();
    assert_eq!(a.plan, b.plan);
    assert_eq!(a.evaluation.expected_cost, b.evaluation.expected_cost);
}

#[test]
fn failed_run_emits_exact_timeline() {
    // Cheap for 2 h, then priced out forever: the group banks 2 interval
    // checkpoints, is provider-killed at t=2, and on-demand finishes.
    let mut prices = vec![0.1, 0.1];
    prices.extend(vec![9.0; 22]);
    let (m, id) = tiny_market(&prices);
    let plan = Plan {
        groups: vec![(
            CircleGroup {
                id,
                instances: 2,
                exec_hours: 3.0,
                ckpt_overhead_hours: 0.0,
                recovery_hours: 0.5,
            },
            GroupDecision {
                bid: 0.2,
                ckpt_interval: 1.0,
            },
        )],
        on_demand: od(),
    };
    let ring = RingRecorder::new(TraceLevel::Detail, 64);
    let out = PlanRunner::new(&m, 8.0)
        .run(&plan, 0.0, &ExecContext::new().with_recorder(&ring))
        .expect("replay succeeds");
    let events = ring.take();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(
        kinds,
        [
            "CheckpointTaken",
            "GroupFailed",
            "OnDemandFallback",
            "RunCompleted"
        ],
        "{kinds:?}"
    );

    let Event::CheckpointTaken {
        group,
        at_hours,
        count,
        saved_fraction,
    } = &events[0]
    else {
        panic!("checkpoint");
    };
    assert_eq!(group, &id.to_string());
    assert_eq!(*count, 2);
    assert!((at_hours - 2.0).abs() < 1e-9);
    assert!((saved_fraction - 2.0 / 3.0).abs() < 1e-9);

    let Event::GroupFailed {
        at_hours,
        saved_fraction,
        ..
    } = &events[1]
    else {
        panic!("group failed");
    };
    assert!((at_hours - 2.0).abs() < 1e-9);
    assert!((saved_fraction - 2.0 / 3.0).abs() < 1e-9);

    let Event::OnDemandFallback {
        remaining_fraction,
        od_cost,
        reason,
        ..
    } = &events[2]
    else {
        panic!("fallback");
    };
    assert_eq!(reason, "all-groups-failed");
    assert!((remaining_fraction - 1.0 / 3.0).abs() < 1e-9);
    assert!((od_cost - out.od_cost).abs() < 1e-9);

    let Event::RunCompleted {
        finisher,
        total_cost,
        spot_cost,
        od_cost,
        wall_hours,
        met_deadline,
        groups_failed,
        windows,
        ..
    } = &events[3]
    else {
        panic!("run completed");
    };
    assert_eq!(finisher, "on-demand");
    assert_eq!(*total_cost, out.total_cost);
    assert_eq!(*spot_cost, out.spot_cost);
    assert_eq!(*od_cost, out.od_cost);
    assert_eq!(*wall_hours, out.wall_hours);
    assert_eq!(*met_deadline, out.met_deadline);
    assert_eq!(*groups_failed, 1);
    assert_eq!(*windows, None);
}

#[test]
fn adaptive_run_emits_one_replan_per_window() {
    let (market, problem) = seeded_market();
    let config = AdaptiveConfig {
        window_hours: 0.2,
        history_hours: 48.0,
        optimizer: OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let ring = RingRecorder::new(TraceLevel::Summary, 256);
    let out = AdaptiveRunner::new(&market, config)
        .run(&problem, 60.0, &ExecContext::new().with_recorder(&ring))
        .expect("adaptive run succeeds");
    let events = ring.take();

    let replans = events
        .iter()
        .filter(|e| e.kind() == "WindowReplanned")
        .count();
    assert_eq!(replans as u32, out.windows);

    let completed: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind() == "RunCompleted")
        .collect();
    assert_eq!(completed.len(), 1);
    let Event::RunCompleted {
        total_cost,
        windows,
        plan_changes,
        ..
    } = completed[0]
    else {
        unreachable!();
    };
    assert_eq!(*total_cost, out.run.total_cost);
    assert_eq!(*windows, Some(out.windows));
    assert_eq!(*plan_changes, Some(out.plan_changes));
}

#[test]
fn persistent_relaunch_narrates_incarnations() {
    // 2 cheap hours, 2 expensive, then cheap: incarnation 1 dies at t=2
    // with 2 checkpoints banked; incarnation 2 finishes on spot.
    let mut prices = vec![0.1, 0.1, 9.0, 9.0];
    prices.extend(vec![0.1; 44]);
    let (m, id) = tiny_market(&prices);
    let g = CircleGroup {
        id,
        instances: 2,
        exec_hours: 3.0,
        ckpt_overhead_hours: 0.0,
        recovery_hours: 0.0,
    };
    let d = GroupDecision {
        bid: 0.2,
        ckpt_interval: 1.0,
    };
    let ring = RingRecorder::new(TraceLevel::Detail, 64);
    let out = replay::run_persistent(
        &m,
        &g,
        &d,
        &od(),
        0.0,
        40.0,
        &ExecContext::new().with_recorder(&ring),
    )
    .expect("relaunch succeeds");
    let events = ring.take();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(
        kinds,
        ["CheckpointTaken", "GroupFailed", "RunCompleted"],
        "{kinds:?}"
    );
    let Event::GroupFailed { at_hours, .. } = &events[1] else {
        panic!("group failed");
    };
    assert!((at_hours - 2.0).abs() < 1e-9);
    let Event::RunCompleted {
        finisher,
        total_cost,
        groups_failed,
        ..
    } = &events[2]
    else {
        panic!("run completed");
    };
    assert_eq!(finisher, &format!("spot:{id}"));
    assert_eq!(*total_cost, out.total_cost);
    assert_eq!(*groups_failed, 1);
}

#[test]
fn committed_fixture_parses_and_renders() {
    // The fixture under tests/fixtures/ is what CI feeds to
    // `sompi trace summarize`; it must stay schema-valid.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/sample_trace.jsonl"
    );
    let text = std::fs::read_to_string(path).expect("fixture exists");
    let events = parse_jsonl(&text).expect("fixture is schema-valid");
    assert!(events.iter().any(|e| e.kind() == "PlanSelected"));
    assert!(events.iter().any(|e| e.kind() == "RunCompleted"));
    let report = sompi_obs::RunReport::from_events(&events).render();
    assert!(report.contains("outcome"), "{report}");
}

#[test]
fn jsonl_round_trip_preserves_the_golden_sequence() {
    // Same scenario as `failed_run_emits_exact_timeline`, but through the
    // JSONL sink: serialize → parse → identical event list.
    let mut prices = vec![0.1, 0.1];
    prices.extend(vec![9.0; 22]);
    let (m, id) = tiny_market(&prices);
    let plan = Plan {
        groups: vec![(
            CircleGroup {
                id,
                instances: 2,
                exec_hours: 3.0,
                ckpt_overhead_hours: 0.0,
                recovery_hours: 0.5,
            },
            GroupDecision {
                bid: 0.2,
                ckpt_interval: 1.0,
            },
        )],
        on_demand: od(),
    };

    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let buf = Arc::new(Mutex::new(Vec::new()));
    let sink = JsonlRecorder::to_writer(Box::new(Shared(buf.clone())), TraceLevel::Detail);
    let ring = RingRecorder::new(TraceLevel::Detail, 64);
    let runner = PlanRunner::new(&m, 8.0);
    runner
        .run(&plan, 0.0, &ExecContext::new().with_recorder(&sink))
        .expect("replay succeeds");
    runner
        .run(&plan, 0.0, &ExecContext::new().with_recorder(&ring))
        .expect("replay succeeds");
    sink.flush().unwrap();
    assert_eq!(sink.write_errors(), 0);

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let parsed = parse_jsonl(&text).expect("schema-valid");
    assert_eq!(parsed, ring.take());
}

#[test]
fn exhausted_checkpoint_retries_emit_fault_retry_and_degraded_events() {
    // Cheap market forever, every checkpoint upload fails: the group must
    // narrate FaultInjected per failed attempt, RetryAttempted with
    // deterministic backoffs, and DegradedMode("no-checkpoint") once the
    // policy gives up.
    let (m, id) = tiny_market(&[0.1; 48]);
    let plan = Plan {
        groups: vec![(
            CircleGroup {
                id,
                instances: 2,
                exec_hours: 3.0,
                ckpt_overhead_hours: 0.0,
                recovery_hours: 0.0,
            },
            GroupDecision {
                bid: 0.2,
                ckpt_interval: 1.0,
            },
        )],
        on_demand: od(),
    };
    let inj = FaultInjector::new(FaultPlan::parse("ckpt-fail=1.0", 9).unwrap(), m.horizon());
    let ring = RingRecorder::new(TraceLevel::Detail, 128);
    let ctx = ExecContext::new()
        .with_recorder(&ring)
        .with_faults(&inj)
        .with_retry(RetryPolicy::default_io());
    let out = PlanRunner::new(&m, 20.0)
        .run(&plan, 0.0, &ctx)
        .expect("replay succeeds");
    assert!(out.total_cost > 0.0);
    let events = ring.take();

    let faults: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind() == "FaultInjected")
        .collect();
    assert!(!faults.is_empty());
    let Event::FaultInjected {
        class,
        group,
        at_hours,
        detail,
    } = faults[0]
    else {
        unreachable!();
    };
    assert_eq!(class, "ckpt-upload-failure");
    assert_eq!(group.as_deref(), Some(id.to_string().as_str()));
    assert!(
        (at_hours - 1.0).abs() < 1e-9,
        "first ckpt at t=1, got {at_hours}"
    );
    assert_eq!(*detail, 1.0); // checkpoint ordinal

    let retries: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind() == "RetryAttempted")
        .collect();
    assert!(!retries.is_empty());
    let mut saw_gave_up = false;
    for e in &retries {
        let Event::RetryAttempted {
            op,
            group,
            attempt,
            backoff_hours,
            gave_up,
            ..
        } = e
        else {
            unreachable!();
        };
        assert_eq!(op, "ckpt-upload");
        assert_eq!(group, &id.to_string());
        assert!(*attempt >= 1);
        if *gave_up {
            saw_gave_up = true;
            assert_eq!(*backoff_hours, 0.0);
        } else {
            assert!(*backoff_hours > 0.0);
        }
    }
    assert!(saw_gave_up, "retry exhaustion must be narrated");

    let degraded: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind() == "DegradedMode")
        .collect();
    assert_eq!(degraded.len(), 1);
    let Event::DegradedMode {
        mode,
        group,
        reason,
        ..
    } = degraded[0]
    else {
        unreachable!();
    };
    assert_eq!(mode, "no-checkpoint");
    assert_eq!(group.as_deref(), Some(id.to_string().as_str()));
    assert_eq!(reason, "ckpt-upload-retries-exhausted");

    // The whole fault timeline survives a JSONL round trip.
    let json: String = events
        .iter()
        .map(|e| serde_json::to_string(e).unwrap() + "\n")
        .collect();
    assert_eq!(parse_jsonl(&json).expect("schema-valid"), events);
}
