//! Integration tests of the adaptive (Algorithm 1) execution path against
//! drifting markets.

use ec2_market::instance::InstanceCatalog;
use ec2_market::market::{CircleGroupId, SpotMarket};
use ec2_market::tracegen::{TraceGenConfig, ZoneVolatility};
use ec2_market::zone::AvailabilityZone;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::adaptive_exec::AdaptiveRunner;
use sompi_core::adaptive::AdaptiveConfig;
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;

/// Market whose price level doubles halfway through the trace.
fn shifting_market() -> SpotMarket {
    let catalog = InstanceCatalog::paper_2014();
    let mut market = SpotMarket::new(catalog.clone());
    for (id, ty) in catalog.iter() {
        for (zi, zone) in AvailabilityZone::PAPER_ZONES.into_iter().enumerate() {
            let cfg1 = TraceGenConfig::preset(ty.on_demand_price * 0.10, ZoneVolatility::Volatile);
            let cfg2 = TraceGenConfig::preset(ty.on_demand_price * 0.22, ZoneVolatility::Volatile);
            let mut t = cfg1.generate(150.0, 1.0 / 12.0, (id.0 * 11 + zi) as u64);
            t.extend_from(&cfg2.generate(150.0, 1.0 / 12.0, (id.0 * 13 + zi + 5) as u64));
            market.insert(CircleGroupId::new(id, zone), t);
        }
    }
    market
}

fn problem(market: &SpotMarket) -> Problem {
    let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(600);
    let mut p = Problem::build(market, &profile, f64::MAX, None, S3Store::paper_2014());
    p.deadline = p.baseline_time() * 1.5;
    p
}

fn config(window: f64) -> AdaptiveConfig {
    AdaptiveConfig {
        window_hours: window,
        history_hours: 48.0,
        optimizer: OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn adaptive_runs_complete_with_bounded_wall() {
    let market = shifting_market();
    let p = problem(&market);
    let runner = AdaptiveRunner::new(&market, config(1.0));
    for start in [60.0, 120.0, 200.0] {
        let out = runner
            .run(&p, start, &replay::ExecContext::new())
            .expect("adaptive run succeeds");
        assert!(out.run.total_cost > 0.0);
        // Even a disastrous run is bounded: spot attempts cut off at the
        // deadline plus one on-demand pass.
        let od = p.baseline();
        assert!(
            out.run.wall_hours <= p.deadline + od.exec_hours + od.recovery_hours + 1.0,
            "wall {} unbounded",
            out.run.wall_hours
        );
        assert!(out.windows >= 1);
    }
}

#[test]
fn progress_carries_across_windows() {
    // With a window much shorter than the job, completion requires durable
    // cross-window progress; if progress leaked, the run would hit the
    // trace horizon and cost a fortune.
    let market = shifting_market();
    let p = problem(&market);
    let runner = AdaptiveRunner::new(&market, config(0.5));
    let out = runner
        .run(&p, 100.0, &replay::ExecContext::new())
        .expect("adaptive run succeeds");
    assert!(
        out.windows >= 2,
        "expected multiple windows, got {}",
        out.windows
    );
    // Total spot+od cost should be within an order of magnitude of the
    // baseline, not multiples from re-executed work.
    assert!(
        out.run.total_cost < 3.0 * p.baseline_cost_billed(),
        "cost {} suggests lost progress",
        out.run.total_cost
    );
}

#[test]
fn maintenance_replans_but_frozen_does_not() {
    let market = shifting_market();
    let p = problem(&market);
    // Start just before the regime shift so re-planning has something to
    // react to.
    let ctx = replay::ExecContext::new();
    let with = AdaptiveRunner::new(&market, config(0.5))
        .run(&p, 145.0, &ctx)
        .expect("adaptive run succeeds");
    let frozen = AdaptiveRunner::new(&market, config(0.5))
        .without_maintenance()
        .run(&p, 145.0, &ctx)
        .expect("adaptive run succeeds");
    assert_eq!(frozen.plan_changes, 0);
    // Both still complete.
    assert!(with.run.total_cost > 0.0 && frozen.run.total_cost > 0.0);
}

#[test]
fn hopeless_deadline_goes_straight_on_demand() {
    let market = shifting_market();
    let mut p = problem(&market);
    p.deadline = p.baseline_time() * 0.5; // impossible even on demand
    let out = AdaptiveRunner::new(&market, config(1.0))
        .run(&p, 60.0, &replay::ExecContext::new())
        .expect("adaptive run succeeds");
    assert!(matches!(out.run.finisher, replay::Finisher::OnDemand));
    assert!(!out.run.met_deadline);
    assert_eq!(out.run.spot_cost, 0.0, "no spot gambling on a lost cause");
}
