//! Differential suite for warm-started incremental re-optimization
//! (DESIGN.md §12): across a many-window study over the drifting stress
//! market, every warm-start ablation setting, at every thread count, must
//! select plans bit-identical to the cold single-threaded reference.
//!
//! The warm layers (incumbent seed + hot-first subset order, and
//! per-`(group, bid)` bucket-table reuse) only change how fast the search
//! converges — the total candidate order decides the winner either way —
//! so any divergence here is an exactness bug, not noise.

use sompi_bench::{build_problem, npb_workload, stress_market, HISTORY_HOURS, TIGHT};
use sompi_core::adaptive::AdaptiveConfig;
use sompi_core::adaptive::PlanContext;
use sompi_core::model::Plan;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};
use sompi_core::view::MarketView;
use sompi_core::warmstart::WarmStart;
use sompi_core::Problem;

const WINDOWS: usize = 50;
const STEP_HOURS: f64 = 2.0;

/// The study scaffold: a drifting stress market and one sliding 48 h view
/// per window, exactly as the adaptive loop builds them.
fn study() -> (Problem, Vec<MarketView>) {
    let horizon = HISTORY_HOURS + 2.0 + WINDOWS as f64 * STEP_HOURS + 10.0;
    let market = stress_market(20140816, horizon);
    let profile = npb_workload(mpi_sim::npb::NpbKernel::Bt);
    let problem = build_problem(&market, &profile, TIGHT);
    let views = (0..WINDOWS)
        .map(|i| {
            let now = HISTORY_HOURS + 1.0 + i as f64 * STEP_HOURS;
            MarketView::from_market(&market, now - HISTORY_HOURS, HISTORY_HOURS)
        })
        .collect();
    (problem, views)
}

/// Re-plan every window in order, carrying `warm` across searches, and
/// return the selected plan sequence.
fn run_study(
    problem: &Problem,
    views: &[MarketView],
    threads: usize,
    mut warm: Option<WarmStart>,
) -> Vec<Plan> {
    let cfg = OptimizerConfig {
        kappa: 2,
        bid_levels: 4,
        threads,
        ..Default::default()
    };
    views
        .iter()
        .map(|view| {
            let mut ctx = PlanContext::new();
            if let Some(w) = warm.as_mut() {
                ctx = ctx.with_warm(w);
            }
            TwoLevelOptimizer::new(problem, view, cfg)
                .optimize_with(&mut ctx)
                .expect("candidates are drawn from the view's market")
                .plan
        })
        .collect()
}

#[test]
fn warm_plans_are_bit_identical_across_threads_and_ablations() {
    let (problem, views) = study();
    // Reference: cold, single-threaded — the sequential pre-warm-start
    // planner replayed over the whole study.
    let reference = run_study(&problem, &views, 1, None);
    assert_eq!(reference.len(), WINDOWS);
    // The drifting market must actually change plans across the study,
    // otherwise the differential would only exercise repetition.
    assert!(
        reference.windows(2).any(|w| w[0] != w[1]),
        "the study never changed plans — market drift too weak to test warm-start"
    );

    for threads in [1usize, 4, 0] {
        let cold = run_study(&problem, &views, threads, None);
        assert_eq!(cold, reference, "cold diverged at threads={threads}");
        for (plan_on, tables_on) in [(true, true), (true, false), (false, true), (false, false)] {
            let warm = WarmStart::new()
                .with_plan_carryover(plan_on)
                .with_table_reuse(tables_on);
            let got = run_study(&problem, &views, threads, Some(warm));
            assert_eq!(
                got, reference,
                "warm(plan={plan_on}, tables={tables_on}) diverged at threads={threads}"
            );
        }
    }
}

#[test]
fn warm_state_survives_a_full_study_and_stays_exact_when_resumed() {
    // Interrupting and resuming the carried state mid-study (as the
    // adaptive loop does after an out-of-bid kill drops the seed) must
    // not change any later selection.
    let (problem, views) = study();
    let reference = run_study(&problem, &views, 0, None);

    let cfg = OptimizerConfig {
        kappa: 2,
        bid_levels: 4,
        threads: 0,
        ..Default::default()
    };
    let mut warm = WarmStart::new();
    let mut got = Vec::with_capacity(views.len());
    for (i, view) in views.iter().enumerate() {
        if i == WINDOWS / 2 {
            // Mid-study invalidation: seed dropped, tables kept.
            warm.invalidate_plan();
        }
        if i == 3 * WINDOWS / 4 {
            // Full reset: both layers restart from nothing.
            warm.clear();
        }
        got.push(
            TwoLevelOptimizer::new(&problem, view, cfg)
                .optimize_with(&mut PlanContext::new().with_warm(&mut warm))
                .expect("candidates are drawn from the view's market")
                .plan,
        );
    }
    assert_eq!(got, reference);
    assert!(warm.has_plan());
    assert!(warm.cached_groups() > 0);
}

#[test]
fn adaptive_studies_are_bit_identical_under_every_ablation_and_thread_count() {
    // The end-to-end version: full adaptive replays (windowed Algorithm 1
    // with plan continuity, caching, and the warm state threaded by the
    // runner) over the stress market, compared outcome-for-outcome.
    use replay::adaptive_exec::AdaptiveRunner;
    use replay::exec::ExecContext;

    let market = stress_market(20140817, 400.0);
    let profile = npb_workload(mpi_sim::npb::NpbKernel::Bt);
    let problem = build_problem(&market, &profile, 2.0);
    let ctx = ExecContext::new();

    let outcome = |threads: usize, warmstart: bool, bucket_reuse: bool| {
        let cfg = AdaptiveConfig {
            window_hours: 1.0,
            history_hours: HISTORY_HOURS,
            optimizer: OptimizerConfig {
                kappa: 2,
                bid_levels: 3,
                threads,
                ..Default::default()
            },
            warmstart,
            bucket_reuse,
        };
        let runner = AdaptiveRunner::new(&market, cfg);
        [60.0, 140.0].map(|start| runner.run(&problem, start, &ctx).expect("replay succeeds"))
    };

    let reference = outcome(1, false, false);
    for threads in [1usize, 4, 0] {
        for (w, b) in [(true, true), (true, false), (false, true), (false, false)] {
            assert_eq!(
                outcome(threads, w, b),
                reference,
                "adaptive outcome diverged at threads={threads}, warmstart={w}, bucket_reuse={b}"
            );
        }
    }
}
