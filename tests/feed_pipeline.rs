//! Integration: real-trace ingestion end to end — parse an AWS-style price
//! feed, build a market from it, calibrate the generator against it, and
//! plan/replay on both the imported and the calibrated-synthetic markets.

use ec2_market::calibrate::calibrate;
use ec2_market::feed::{parse_feed, traces_by_group};
use ec2_market::instance::InstanceCatalog;
use ec2_market::market::{CircleGroupId, SpotMarket};
use ec2_market::zone::AvailabilityZone;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::PlanRunner;
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;
use std::fmt::Write as _;

/// Build a plausible multi-day feed: m1.small in two zones, hourly
/// repricing with a daily spike in zone 1a.
fn synthetic_feed() -> String {
    let mut f = String::from("# ts type zone price\n");
    for hour in 0..200u32 {
        let ts = hour as f64 * 3600.0;
        let spike = hour % 24 == 10; // daily spike in 1a
        let p1a = if spike {
            2.0
        } else {
            0.008 + 0.001 * ((hour % 5) as f64)
        };
        let p1b = 0.0075 + 0.0005 * ((hour % 3) as f64);
        writeln!(f, "{ts} m1.small us-east-1a {p1a:.4}").unwrap();
        writeln!(f, "{ts} m1.small us-east-1b {p1b:.4}").unwrap();
    }
    f
}

fn market_from_feed(feed: &str) -> SpotMarket {
    let events = parse_feed(feed).expect("feed parses");
    let catalog = InstanceCatalog::paper_2014();
    let mut market = SpotMarket::new(catalog.clone());
    for ((ty, zone), trace) in traces_by_group(&events, 1.0 / 12.0) {
        let ty = catalog.by_name(&ty).expect("known type");
        let zone = match zone.as_str() {
            "us-east-1a" => AvailabilityZone::UsEast1a,
            "us-east-1b" => AvailabilityZone::UsEast1b,
            other => panic!("unexpected zone {other}"),
        };
        market.insert(CircleGroupId::new(ty, zone), trace);
    }
    market
}

#[test]
fn imported_feed_supports_full_planning_pipeline() {
    let market = market_from_feed(&synthetic_feed());
    assert_eq!(market.len(), 2);

    // 16-rank job so a 16-instance m1.small fleet hosts it.
    let profile = NpbKernel::Bt.profile(NpbClass::A, 16).repeated(100);
    let mut problem = Problem::build(&market, &profile, f64::MAX, None, S3Store::paper_2014());
    // Candidates exist only for types with traces.
    assert_eq!(problem.candidates.len(), 2);
    problem.deadline = problem.baseline_time() * 1.5;

    let view = MarketView::from_market(&market, 0.0, 48.0);
    let plan = Sompi {
        config: OptimizerConfig {
            kappa: 2,
            bid_levels: 4,
            ..Default::default()
        },
    }
    .plan(&problem, &view, &mut PlanContext::new())
    .unwrap();
    assert!(
        !plan.groups.is_empty(),
        "spot plan expected on a cheap market"
    );

    let out = PlanRunner::new(&market, problem.deadline)
        .run(&plan, 60.0, &replay::ExecContext::new())
        .expect("replay succeeds");
    assert!(out.total_cost > 0.0);
    assert!(out.wall_hours > 0.0);
}

#[test]
fn calibration_of_imported_trace_detects_the_daily_spike() {
    let market = market_from_feed(&synthetic_feed());
    let cat = market.catalog();
    let id = CircleGroupId::new(cat.by_name("m1.small").unwrap(), AvailabilityZone::UsEast1a);
    let trace = market.trace(id).unwrap();
    let cal = calibrate(trace.window(0.0, f64::INFINITY), 4.0);
    // One spike a day over ~8 days.
    assert!(
        (5..=10).contains(&cal.spike_episodes),
        "episodes {}",
        cal.spike_episodes
    );
    // Spike amplitude ≈ 2.0 / 0.009 ≈ 200× the base.
    assert!(cal.config.spike_multiplier.1 > 50.0);
    // Base recovered near the calm level.
    assert!(
        (cal.config.base_price - 0.009).abs() < 0.004,
        "{}",
        cal.config.base_price
    );
}

#[test]
fn flat_zone_of_the_feed_is_preferred_by_the_optimizer() {
    let market = market_from_feed(&synthetic_feed());
    let profile = NpbKernel::Bt.profile(NpbClass::A, 16).repeated(100);
    let mut problem = Problem::build(&market, &profile, f64::MAX, None, S3Store::paper_2014());
    problem.deadline = problem.baseline_time() * 1.5;
    let view = MarketView::from_market(&market, 0.0, 48.0);
    let plan = Sompi {
        config: OptimizerConfig {
            kappa: 1,
            bid_levels: 4,
            ..Default::default()
        },
    }
    .plan(&problem, &view, &mut PlanContext::new())
    .unwrap();
    // With κ = 1 the single chosen group should be the spike-free 1b zone.
    assert_eq!(plan.groups.len(), 1);
    assert_eq!(plan.groups[0].0.id.zone, AvailabilityZone::UsEast1b);
}
