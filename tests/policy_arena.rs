//! Policy-trait exactness contract.
//!
//! The `Policy` redesign must be a pure re-plumbing: routing SOMPI
//! through the trait (as the service, tournament and adaptive runner
//! now do) has to produce bitwise the same plans as calling the
//! two-level optimizer directly — at every thread count, with and
//! without a resident `SearchPool`, and through the adaptive loop's
//! default-policy path.

use replay::adaptive_exec::AdaptiveRunner;
use replay::ExecContext;
use sompi_bench::{build_problem, npb_workload, paper_market, planning_view, LOOSE};
use sompi_core::adaptive::{AdaptiveConfig, PlanContext};
use sompi_core::baselines::Sompi;
use sompi_core::policy::{policy_by_name, Policy};
use sompi_core::pool::SearchPool;
use sompi_core::twolevel::{OptimizerConfig, TwoLevelOptimizer};

fn config(threads: usize) -> OptimizerConfig {
    OptimizerConfig {
        kappa: 2,
        bid_levels: 4,
        threads,
        ..Default::default()
    }
}

#[test]
fn sompi_via_policy_is_bit_identical_to_the_direct_optimizer() {
    let market = paper_market(20140809, 300.0);
    let profile = npb_workload(mpi_sim::npb::NpbKernel::Bt);
    let problem = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);

    // 0 = one worker per core; the reference plan is thread-invariant,
    // so one direct run anchors every comparison.
    let reference = TwoLevelOptimizer::new(&problem, &view, config(1))
        .optimize()
        .expect("search succeeds")
        .plan;

    for threads in [1usize, 4, 0] {
        let cfg = config(threads);
        let direct = TwoLevelOptimizer::new(&problem, &view, cfg)
            .optimize()
            .expect("search succeeds")
            .plan;
        assert_eq!(
            direct, reference,
            "direct plan drifted at threads={threads}"
        );

        let via_policy = Sompi { config: cfg }
            .plan(&problem, &view, &mut PlanContext::new())
            .expect("policy plans");
        assert_eq!(
            via_policy, reference,
            "Sompi-via-Policy diverged at threads={threads}"
        );

        let pool = SearchPool::new(2);
        let pooled = Sompi { config: cfg }
            .plan(&problem, &view, &mut PlanContext::new().with_pool(&pool))
            .expect("pooled policy plans");
        assert_eq!(
            pooled, reference,
            "pooled Sompi-via-Policy diverged at threads={threads}"
        );

        let registry = policy_by_name("sompi", cfg).expect("sompi is registered");
        let named = registry
            .plan(&problem, &view, &mut PlanContext::new())
            .expect("registry policy plans");
        assert_eq!(
            named, reference,
            "registry-resolved sompi diverged at threads={threads}"
        );
    }
}

#[test]
fn adaptive_default_policy_matches_explicit_sompi_policy() {
    let market = paper_market(27182, 300.0);
    let profile = npb_workload(mpi_sim::npb::NpbKernel::Sp);
    let problem = build_problem(&market, &profile, LOOSE);
    let cfg = AdaptiveConfig {
        window_hours: 2.0,
        history_hours: 48.0,
        optimizer: config(1),
        ..Default::default()
    };
    let ctx = ExecContext::new();
    let start = 49.0;

    let default_run = AdaptiveRunner::new(&market, cfg)
        .run(&problem, start, &ctx)
        .expect("default adaptive run succeeds");
    let policy = Sompi { config: config(1) };
    let explicit_run = AdaptiveRunner::new(&market, cfg)
        .with_policy(&policy)
        .run(&problem, start, &ctx)
        .expect("explicit-policy adaptive run succeeds");

    assert_eq!(default_run.run, explicit_run.run);
    assert_eq!(default_run.windows, explicit_run.windows);
    assert_eq!(default_run.plan_changes, explicit_run.plan_changes);
}

#[test]
fn every_registered_policy_plans_deterministically() {
    let market = paper_market(31415, 300.0);
    let profile = npb_workload(mpi_sim::npb::NpbKernel::Bt);
    let problem = build_problem(&market, &profile, LOOSE);
    let view = planning_view(&market);

    for name in sompi_core::policy::POLICY_NAMES {
        let policy = policy_by_name(name, config(0)).expect("roster name resolves");
        let a = policy.plan(&problem, &view, &mut PlanContext::new());
        let b = policy.plan(&problem, &view, &mut PlanContext::new());
        match (a, b) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "{name} is nondeterministic"),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            _ => panic!("{name}: one run planned, the other errored"),
        }
    }
}
