//! Resilience suite: deterministic fault injection and graceful
//! degradation, one scenario per fault class (ISSUE 4 acceptance).
//!
//! Every test here drives the *public* fault API — `FaultPlan::parse`,
//! `FaultInjector`, `ExecContext` — the same way the CLI's `--faults`
//! flag does, and asserts two invariants on top of the per-class
//! behavior: the run still completes (degrades, never wedges), and the
//! cost accounting stays consistent (`total = spot + od`).

use ec2_market::fault::{FaultInjector, FaultPlan, RetryPolicy};
use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::{CircleGroupId, SpotMarket};
use ec2_market::trace::SpotTrace;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use ec2_market::zone::AvailabilityZone;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::{AdaptiveRunner, ExecContext, MonteCarlo, PlanRunner};
use sompi_core::adaptive::AdaptiveConfig;
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::Strategy;
use sompi_core::model::{CircleGroup, GroupDecision, OnDemandOption, Plan};
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_obs::{Event, RingRecorder, TraceLevel};

fn seeded_market() -> (SpotMarket, Problem) {
    let cat = InstanceCatalog::paper_2014();
    let prof = MarketProfile::paper_2014(&cat);
    let market = SpotMarket::generate(cat, &TraceGenerator::new(prof, 31), 300.0, 1.0 / 12.0);
    let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
    let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| market.catalog().by_name(n).unwrap())
        .collect();
    let problem = Problem::build(&market, &profile, 4.0, Some(&types), S3Store::paper_2014());
    (market, problem)
}

fn tiny_market(prices: &[f64]) -> (SpotMarket, CircleGroupId) {
    let cat = InstanceCatalog::paper_2014();
    let ty = cat.by_name("m1.small").unwrap();
    let id = CircleGroupId::new(ty, AvailabilityZone::UsEast1a);
    let mut m = SpotMarket::new(cat);
    m.insert(id, SpotTrace::new(1.0, prices.to_vec()));
    (m, id)
}

fn tiny_plan(id: CircleGroupId, ckpt_interval: f64) -> Plan {
    Plan {
        groups: vec![(
            CircleGroup {
                id,
                instances: 2,
                exec_hours: 3.0,
                ckpt_overhead_hours: 0.0,
                recovery_hours: 0.5,
            },
            GroupDecision {
                bid: 0.2,
                ckpt_interval,
            },
        )],
        on_demand: OnDemandOption {
            instance_type: InstanceTypeId(4),
            instances: 1,
            exec_hours: 4.0,
            unit_price: 2.0,
            recovery_hours: 0.5,
        },
    }
}

fn injector(m: &SpotMarket, spec: &str, seed: u64) -> FaultInjector {
    FaultInjector::new(FaultPlan::parse(spec, seed).unwrap(), m.horizon())
}

fn accounting_consistent(total: f64, spot: f64, od: f64) -> bool {
    (total - (spot + od)).abs() < 1e-9
}

/// Zero out the wall-clock profiling fields (`assess_secs`,
/// `search_secs`, `evals_per_sec`, `kernel_nanos`): they measure host
/// time, not simulated time, and are the only event payload allowed to
/// differ between identical runs.
fn scrub_timings(mut events: Vec<Event>) -> Vec<Event> {
    for e in &mut events {
        if let Event::PlanSelected {
            assess_secs,
            search_secs,
            evals_per_sec,
            kernel_nanos,
            ..
        } = e
        {
            *assess_secs = 0.0;
            *search_secs = 0.0;
            *evals_per_sec = 0.0;
            *kernel_nanos = 0;
        }
    }
    events
}

/// Same seed + same config ⇒ bit-identical event timeline and final
/// cost, regardless of planner thread count. Search-internal events
/// (`PlanSearchStarted`/`SubsetEvaluated`) legitimately differ with the
/// worker count, so the comparison filters them; everything else —
/// including every injected fault — must match exactly.
#[test]
fn fault_timeline_is_deterministic_across_thread_counts() {
    let (market, problem) = seeded_market();
    let inj = injector(&market, "storm=0.05x0.8,ckpt-fail=0.3,feed-gap=0.5", 17);
    let mut outs = Vec::new();
    for threads in [1usize, 0] {
        let config = AdaptiveConfig {
            window_hours: 0.5,
            history_hours: 48.0,
            optimizer: OptimizerConfig {
                kappa: 2,
                bid_levels: 3,
                threads,
                ..Default::default()
            },
            ..Default::default()
        };
        let ring = RingRecorder::new(TraceLevel::Detail, 4096);
        let ctx = ExecContext::new()
            .with_recorder(&ring)
            .with_faults(&inj)
            .with_retry(RetryPolicy::default_io());
        let out = AdaptiveRunner::new(&market, config)
            .run(&problem, 60.0, &ctx)
            .expect("adaptive run succeeds");
        let timeline: Vec<Event> = scrub_timings(
            ring.take()
                .into_iter()
                .filter(|e| !matches!(e.kind(), "PlanSearchStarted" | "SubsetEvaluated"))
                .collect(),
        );
        outs.push((out, timeline));
    }
    let (a, ta) = &outs[0];
    let (b, tb) = &outs[1];
    assert_eq!(ta, tb, "timelines diverge between threads=1 and auto");
    assert_eq!(a.run.total_cost, b.run.total_cost);
    assert_eq!(a.run.wall_hours, b.run.wall_hours);
    assert_eq!(a.windows, b.windows);
}

/// Monte-Carlo aggregation over a faulty execution is equally
/// thread-count independent.
#[test]
fn faulty_monte_carlo_matches_across_thread_counts() {
    let (market, problem) = seeded_market();
    let view = sompi_core::view::MarketView::from_market(&market, 0.0, 48.0);
    let plan = sompi_core::baselines::Sompi {
        config: OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..Default::default()
        },
    }
    .plan(&problem, &view, &mut PlanContext::new())
    .unwrap();
    let inj = injector(&market, "storm=0.05x0.8,ckpt-fail=0.3", 17);
    let ctx = ExecContext::new()
        .with_faults(&inj)
        .with_retry(RetryPolicy::default_io());
    let run = |threads: usize| {
        MonteCarlo::builder()
            .replicas(32)
            .seed(5)
            .offsets(48.0, 260.0)
            .threads(threads)
            .build()
            .run_plan(&market, &plan, problem.deadline, &ctx)
            .expect("replay succeeds")
    };
    assert_eq!(run(1), run(0));
}

/// Fault class 1 — spot kill storms: a storm terminates a group the
/// price trace would have spared; the run degrades to the on-demand
/// fallback instead of wedging, and the books still balance.
#[test]
fn kill_storm_degrades_to_on_demand_fallback() {
    let (m, id) = tiny_market(&[0.1; 48]); // never priced out
    let plan = tiny_plan(id, 1.0);
    let inj = injector(&m, "storm=2.0x1.0", 3);
    let ring = RingRecorder::new(TraceLevel::Detail, 128);
    let ctx = ExecContext::new().with_recorder(&ring).with_faults(&inj);
    let out = PlanRunner::new(&m, 20.0)
        .run(&plan, 0.0, &ctx)
        .expect("replay succeeds");

    let calm = PlanRunner::new(&m, 20.0)
        .run(&plan, 0.0, &ExecContext::new())
        .expect("replay succeeds");
    assert!(matches!(calm.finisher, replay::Finisher::Spot(_)));

    let events = ring.take();
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::FaultInjected { class, .. } if class == "spot-kill-storm"
        )),
        "storm must be narrated"
    );
    assert!(out.total_cost > 0.0 && out.wall_hours > 0.0);
    assert!(accounting_consistent(
        out.total_cost,
        out.spot_cost,
        out.od_cost
    ));
    // Provider kill before hour 3 ⇒ the group cannot have finished.
    assert!(matches!(out.finisher, replay::Finisher::OnDemand));
    assert!(out.od_cost > 0.0);
}

/// Fault class 2 — checkpoint I/O failure: with every upload failing,
/// the group exhausts its retries, drops to no-checkpoint mode, and the
/// run still completes with consistent accounting.
#[test]
fn checkpoint_upload_failures_degrade_to_no_checkpoint() {
    let (m, id) = tiny_market(&[0.1; 48]);
    let plan = tiny_plan(id, 1.0);
    let inj = injector(&m, "ckpt-fail=1.0", 9);
    let ring = RingRecorder::new(TraceLevel::Detail, 128);
    let ctx = ExecContext::new()
        .with_recorder(&ring)
        .with_faults(&inj)
        .with_retry(RetryPolicy::default_io());
    let out = PlanRunner::new(&m, 20.0)
        .run(&plan, 0.0, &ctx)
        .expect("replay succeeds");

    let events = ring.take();
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::DegradedMode { mode, .. } if mode == "no-checkpoint"
        )),
        "degradation must be narrated"
    );
    assert!(out.total_cost > 0.0);
    assert!(accounting_consistent(
        out.total_cost,
        out.spot_cost,
        out.od_cost
    ));
    // The market never prices the group out, so it still finishes on
    // spot — checkpoints were overhead-free insurance it no longer has.
    assert!(matches!(out.finisher, replay::Finisher::Spot(_)));
}

/// Fault class 3 — restore corruption: the on-demand fallback finds the
/// latest checkpoint corrupt and falls back one checkpoint, re-running
/// that interval; the corrupted run costs at least as much as the clean
/// one and both complete.
#[test]
fn restore_corruption_falls_back_one_checkpoint() {
    // Cheap for 2 h, then priced out: 2 banked checkpoints, then OD.
    let mut prices = vec![0.1, 0.1];
    prices.extend(vec![9.0; 22]);
    let (m, id) = tiny_market(&prices);
    let plan = tiny_plan(id, 1.0);

    let clean = PlanRunner::new(&m, 20.0)
        .run(&plan, 0.0, &ExecContext::new())
        .expect("replay succeeds");

    let inj = injector(&m, "restore-corrupt=1.0", 11);
    let ring = RingRecorder::new(TraceLevel::Detail, 128);
    let ctx = ExecContext::new().with_recorder(&ring).with_faults(&inj);
    let corrupt = PlanRunner::new(&m, 20.0)
        .run(&plan, 0.0, &ctx)
        .expect("replay succeeds");

    let events = ring.take();
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::DegradedMode { mode, .. } if mode == "previous-checkpoint"
        )),
        "fallback to the previous checkpoint must be narrated"
    );
    assert!(matches!(clean.finisher, replay::Finisher::OnDemand));
    assert!(matches!(corrupt.finisher, replay::Finisher::OnDemand));
    assert!(
        corrupt.od_cost > clean.od_cost,
        "re-running the lost interval must cost extra: {} vs {}",
        corrupt.od_cost,
        clean.od_cost
    );
    assert!(accounting_consistent(
        corrupt.total_cost,
        corrupt.spot_cost,
        corrupt.od_cost
    ));
}

fn adaptive_config() -> AdaptiveConfig {
    AdaptiveConfig {
        window_hours: 0.5,
        history_hours: 48.0,
        optimizer: OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            threads: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Fault class 4a — intermittent market-feed gaps: on a gapped window
/// the adaptive planner falls back to the last valid market view,
/// narrated as `DegradedMode("stale-market-view")`, and still
/// completes.
#[test]
fn intermittent_feed_gap_falls_back_to_last_valid_view() {
    let (market, problem) = seeded_market();
    let inj = injector(&market, "feed-gap=0.5", 17);
    let ring = RingRecorder::new(TraceLevel::Summary, 1024);
    let ctx = ExecContext::new().with_recorder(&ring).with_faults(&inj);
    let out = AdaptiveRunner::new(&market, adaptive_config())
        .run(&problem, 60.0, &ctx)
        .expect("adaptive run succeeds");

    let events = ring.take();
    let gaps = events
        .iter()
        .filter(|e| matches!(e, Event::FaultInjected { class, .. } if class == "feed-gap"))
        .count();
    assert!(gaps >= 1, "seed 17 gaps at least one window");
    assert!(
        events.iter().any(|e| matches!(
            e,
            Event::DegradedMode { mode, reason, .. }
                if mode == "stale-market-view" && reason == "feed-gap"
        )),
        "stale-view fallback must be narrated"
    );
    assert!(out.run.total_cost > 0.0 && out.run.wall_hours > 0.0);
    assert!(accounting_consistent(
        out.run.total_cost,
        out.run.spot_cost,
        out.run.od_cost
    ));
}

/// Fault class 4b — a *permanently* gapped feed never yields a valid
/// view to fall back to; the planner proceeds best-effort on the gapped
/// history and the run still completes with consistent accounting.
#[test]
fn permanent_feed_gap_still_completes() {
    let (market, problem) = seeded_market();
    let inj = injector(&market, "feed-gap=1.0", 29);
    let ring = RingRecorder::new(TraceLevel::Summary, 1024);
    let ctx = ExecContext::new().with_recorder(&ring).with_faults(&inj);
    let out = AdaptiveRunner::new(&market, adaptive_config())
        .run(&problem, 60.0, &ctx)
        .expect("adaptive run succeeds");

    let events = ring.take();
    let gaps = events
        .iter()
        .filter(|e| matches!(e, Event::FaultInjected { class, .. } if class == "feed-gap"))
        .count();
    assert_eq!(gaps as u32, out.windows, "every window's feed was gapped");
    assert!(out.run.total_cost > 0.0 && out.run.wall_hours > 0.0);
    assert!(accounting_consistent(
        out.run.total_cost,
        out.run.spot_cost,
        out.run.od_cost
    ));
}
