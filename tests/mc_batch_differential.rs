//! Differential suite for the batched scenario-major replay executor and
//! the tournament replay memo: every replay-facing answer — per-replica
//! `RunOutcome`s, Monte-Carlo aggregates, tournament reports — must be
//! bit-identical across {batched, scalar} × {memo on, memo off} ×
//! threads {1, 4, auto}. Both layers are pure wall-clock optimizations
//! (the death-time table reproduces `TraceQuery`'s float arithmetic
//! form exactly and the memo only reuses what a re-run would
//! reproduce); any divergence here is a correctness bug.

use ec2_market::fault::{FaultInjector, FaultPlan, RetryPolicy};
use ec2_market::instance::{InstanceCatalog, InstanceTypeId};
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::{BatchTables, ExecContext, ExecMode, MonteCarlo, PlanRunner, RunOutcome};
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::model::Plan;
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;
use sompi_obs::{NullRecorder, RingRecorder, TraceLevel};
use sompi_server::proto::PlanRequest;
use sompi_server::tournament::{run_tournament, TournamentConfig};

/// Deterministic start-offset stream (xorshift64*), so the "randomized"
/// grid below is reproducible across runs and platforms.
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        let x = self.0.wrapping_mul(0x2545_f491_4f6c_dd1d);
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn market(seed: u64) -> SpotMarket {
    let cat = InstanceCatalog::paper_2014();
    let prof = MarketProfile::paper_2014(&cat);
    SpotMarket::generate(cat, &TraceGenerator::new(prof, seed), 300.0, 1.0 / 12.0)
}

fn problem_on(market: &SpotMarket) -> Problem {
    let profile = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
    let types: Vec<InstanceTypeId> = ["m1.small", "m1.medium", "c3.xlarge", "cc2.8xlarge"]
        .iter()
        .map(|n| market.catalog().by_name(n).unwrap())
        .collect();
    Problem::build(market, &profile, 4.0, Some(&types), S3Store::paper_2014())
}

fn plan_on(market: &SpotMarket, problem: &Problem) -> Plan {
    let view = MarketView::from_market(market, 0.0, 48.0);
    Sompi {
        config: OptimizerConfig {
            kappa: 2,
            bid_levels: 3,
            ..Default::default()
        },
    }
    .plan(problem, &view, &mut PlanContext::new())
    .unwrap()
}

/// Field-by-field bit comparison — stricter than `PartialEq`, which
/// would let `0.0 == -0.0` slide.
fn assert_outcome_bits(a: &RunOutcome, b: &RunOutcome, what: &str) {
    assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits(), "{what}");
    assert_eq!(a.spot_cost.to_bits(), b.spot_cost.to_bits(), "{what}");
    assert_eq!(a.od_cost.to_bits(), b.od_cost.to_bits(), "{what}");
    assert_eq!(a.wall_hours.to_bits(), b.wall_hours.to_bits(), "{what}");
    assert_eq!(a.finisher, b.finisher, "{what}");
    assert_eq!(a.groups_failed, b.groups_failed, "{what}");
    assert_eq!(a.met_deadline, b.met_deadline, "{what}");
}

/// Every per-replica `RunOutcome` matches bit-for-bit over a randomized
/// grid of start offsets — on the clean closed-form path and on the
/// fault-perturbed step-walk path (where the batched executor keeps the
/// death tables for launch/death lookups but walks replicas scalar-wise
/// with the precomputed fault keys).
#[test]
fn run_outcomes_identical_batched_vs_scalar() {
    for seed in [31u64, 77, 910] {
        let market = market(seed);
        let problem = problem_on(&market);
        let plan = plan_on(&market, &problem);
        let batch = BatchTables::for_plan(&market, &plan).unwrap();
        let injector = FaultInjector::new(
            FaultPlan::parse("storm=0.05x0.8,ckpt-fail=0.3,ckpt-latency=0.2:0.25", 17).unwrap(),
            market.horizon(),
        );
        let scalar_clean = ExecContext::new().with_mode(ExecMode::Scalar);
        let batched_clean = ExecContext::new()
            .with_mode(ExecMode::Batched)
            .with_batch(&batch);
        let scalar_faulty = scalar_clean
            .with_faults(&injector)
            .with_retry(RetryPolicy::default_io());
        let batched_faulty = batched_clean
            .with_faults(&injector)
            .with_retry(RetryPolicy::default_io());
        let runner = PlanRunner::new(&market, problem.deadline);
        let mut rng = Rng(seed ^ 0x9e37_79b9_7f4a_7c15);
        for i in 0..40 {
            let start = 48.0 + rng.next_f64() * 210.0;
            let a = runner.run(&plan, start, &scalar_clean).unwrap();
            let b = runner.run(&plan, start, &batched_clean).unwrap();
            assert_outcome_bits(&a, &b, &format!("clean seed={seed} i={i} start={start}"));
            let a = runner.run(&plan, start, &scalar_faulty).unwrap();
            let b = runner.run(&plan, start, &batched_faulty).unwrap();
            assert_outcome_bits(&a, &b, &format!("faulty seed={seed} i={i} start={start}"));
        }
    }
}

/// Monte-Carlo aggregates are identical across the full matrix of
/// {batched, scalar} × threads {1, 4, auto}, with and without faults.
/// `MonteCarlo::run_plan` builds the batch tables itself when the
/// context is in batched mode.
#[test]
fn mc_aggregates_identical_across_batch_and_threads() {
    let market = market(31);
    let problem = problem_on(&market);
    let plan = plan_on(&market, &problem);
    let injector = FaultInjector::new(
        FaultPlan::parse("storm=0.05x0.8,ckpt-fail=0.3", 17).unwrap(),
        market.horizon(),
    );
    for faulty in [false, true] {
        let run = |mode: ExecMode, threads: usize| {
            let mut ctx = ExecContext::new().with_mode(mode);
            if faulty {
                ctx = ctx
                    .with_faults(&injector)
                    .with_retry(RetryPolicy::default_io());
            }
            MonteCarlo::builder()
                .replicas(96)
                .seed(5)
                .offsets(48.0, 260.0)
                .threads(threads)
                .build()
                .run_plan(&market, &plan, problem.deadline, &ctx)
                .expect("replay succeeds")
        };
        let reference = run(ExecMode::Scalar, 1);
        for threads in [1usize, 4, 0] {
            assert_eq!(
                reference,
                run(ExecMode::Scalar, threads),
                "scalar, threads={threads}, faulty={faulty}"
            );
            assert_eq!(
                reference,
                run(ExecMode::Batched, threads),
                "batched, threads={threads}, faulty={faulty}"
            );
        }
    }
}

fn tournament_config(threads: u32) -> TournamentConfig {
    TournamentConfig {
        market_hours: 150.0,
        replicas: 4,
        policies: vec![
            "ondemand".into(),
            "no-ft".into(),
            "no-ft".into(),
            "sompi".into(),
        ],
        fault_specs: vec![None, Some("storm=0.02x0.5,ckpt-fail=0.1".into())],
        plan: PlanRequest {
            repeats: 50,
            kappa: 1,
            bid_levels: 2,
            threads,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Tournament cells are bit-identical over every {batch on/off} ×
/// {memo on/off} corner and every thread count, and — for a fixed
/// corner — the full report JSON is byte-identical across threads (the
/// determinism contract CI enforces, extended to the new ablations).
/// Cells are compared through their JSON serialization: `serde_json`
/// prints `-0.0` and `0.0` differently, so byte equality is bit
/// equality.
#[test]
fn tournament_cells_identical_across_ablation_corners_and_threads() {
    let cells_json = |batch: bool, memo: bool, threads: u32| {
        let mut cfg = tournament_config(threads);
        cfg.batch_replay = batch;
        cfg.replay_memo = memo;
        let report = run_tournament(&cfg, &NullRecorder, None).unwrap();
        (
            serde_json::to_string(&report.cells).unwrap(),
            report.to_json(),
        )
    };
    let (reference, default_json) = cells_json(true, true, 1);
    for threads in [1u32, 4, 0] {
        for (batch, memo) in [(true, true), (true, false), (false, true), (false, false)] {
            let (cells, full) = cells_json(batch, memo, threads);
            assert_eq!(
                reference, cells,
                "cells diverge at batch={batch} memo={memo} threads={threads}"
            );
            if (batch, memo) == (true, true) {
                assert_eq!(
                    default_json, full,
                    "default-corner report JSON diverges at threads={threads}"
                );
            }
        }
    }
}

/// Identical-plan cells share one search and one replay per fault spec:
/// the roster above has `no-ft` twice, so the trace must show exactly
/// one `PlanSearchStarted` per *unique* policy that runs a two-level
/// search (only `sompi` here — `ondemand`/`no-ft` are closed-form) and
/// the memo counters must account for every duplicated (plan,
/// fault-spec) replay.
#[test]
fn tournament_emits_one_search_per_unique_plan() {
    let cfg = tournament_config(1);
    let ring = RingRecorder::new(TraceLevel::Summary, 8192);
    let report = run_tournament(&cfg, &ring, None).unwrap();
    let searches = ring
        .events()
        .iter()
        .filter(|e| e.kind() == "PlanSearchStarted")
        .count();
    assert_eq!(searches, 1, "only sompi runs a two-level search");
    let memo_hits = ring
        .events()
        .iter()
        .filter(|e| e.kind() == "ReplayMemoHit")
        .count();
    // The duplicated no-ft entry re-hits the memo once per fault spec.
    assert_eq!(memo_hits, 2);
    assert_eq!(report.replay_memo_hits, 2);
    assert_eq!(report.replay_memo_misses, 3 * 2);
    // Batched replays announce themselves once per (plan, market, spec).
    let batched = ring
        .events()
        .iter()
        .filter(|e| e.kind() == "ReplayBatched")
        .count();
    assert_eq!(batched, 3 * 2, "one ReplayBatched per memo miss");
}
