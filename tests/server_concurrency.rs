//! Cross-crate integration tests for the planner service: concurrent
//! clients against a live socket server, exactness versus the in-process
//! service path, single-flight cache accounting, and load shedding.
//!
//! The acceptance bar these tests pin down:
//! - plans answered over the socket are bit-identical to plans computed
//!   in-process (the CLI path), at every thread count;
//! - a burst of identical-fingerprint requests performs exactly one
//!   search (cache hit/coalesce events and counters prove it);
//! - overload produces typed `Overloaded` responses and the server
//!   still drains and shuts down cleanly (no deadlock).

use ec2_market::instance::InstanceCatalog;
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use sompi_obs::{Event, NullRecorder, Recorder, RingRecorder, TraceLevel};
use sompi_server::cache::SharedPlanCache;
use sompi_server::proto::{PlanRequest, ReplayRequest, Request, Response};
use sompi_server::{client, service, ServeStats, Server, ServerConfig, PROTOCOL_VERSION};
use std::sync::Arc;

fn market(seed: u64, hours: f64) -> SpotMarket {
    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    SpotMarket::generate(
        catalog,
        &TraceGenerator::new(profile, seed),
        hours,
        1.0 / 12.0,
    )
}

fn small_plan_request() -> PlanRequest {
    PlanRequest {
        repeats: 50,
        kappa: 1,
        bid_levels: 2,
        ..Default::default()
    }
}

/// Bind a server on an ephemeral loopback port and run it on a thread.
/// Returns the address, the shared cache (for counter assertions), a
/// stop handle and the join handle yielding [`ServeStats`].
fn start(
    recorder: Arc<dyn Recorder + Send + Sync>,
    config: ServerConfig,
) -> (
    String,
    Arc<SharedPlanCache>,
    sompi_server::ServerHandle,
    std::thread::JoinHandle<ServeStats>,
) {
    let server = Server::bind(Arc::new(market(42, 100.0)), recorder, config).expect("bind");
    let addr = server.local_addr().to_string();
    let cache = server.cache();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, cache, handle, join)
}

fn ephemeral(workers: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        ..Default::default()
    }
}

#[test]
fn ping_reports_the_protocol_version() {
    let (addr, _, handle, join) = start(Arc::new(NullRecorder), ephemeral(1));
    let resp = client::call(&addr, &Request::Ping).expect("ping");
    assert_eq!(
        resp,
        Response::Pong {
            version: PROTOCOL_VERSION
        }
    );
    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn concurrent_plans_are_bit_identical_to_the_in_process_path() {
    // Two distinct request shapes (different deadlines → different
    // fingerprints), interleaved across 8 client threads.
    let tight = small_plan_request();
    let mut relaxed = small_plan_request();
    relaxed.deadline_factor = 2.0;

    // The in-process ("CLI") answers, computed on an identical market.
    let local = market(42, 100.0);
    let want_tight = service::plan(&local, &tight, &NullRecorder, None).expect("plan");
    let want_relaxed = service::plan(&local, &relaxed, &NullRecorder, None).expect("plan");
    assert_ne!(want_tight.plan, want_relaxed.plan, "distinct problems");

    let (addr, cache, handle, join) = start(Arc::new(NullRecorder), ephemeral(4));
    let responses: Vec<(bool, Response)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = &addr;
                let req = if i % 2 == 0 { &tight } else { &relaxed };
                scope.spawn(move || {
                    (
                        i % 2 == 0,
                        client::call(addr, &Request::Plan(req.clone())).expect("call"),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (is_tight, resp) in responses {
        let Response::Plan { report, .. } = resp else {
            panic!("expected a plan response, got {resp:?}");
        };
        let want = if is_tight { &want_tight } else { &want_relaxed };
        assert_eq!(
            &report, want,
            "socket answer differs from in-process answer"
        );
    }
    // Two distinct fingerprints → exactly two searches ran.
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits() + cache.coalesced(), 6);
    handle.stop();
    join.join().expect("server thread");
}

#[test]
fn identical_burst_performs_exactly_one_search() {
    let ring = Arc::new(RingRecorder::new(TraceLevel::Summary, 256));
    let (addr, cache, handle, join) = start(Arc::clone(&ring) as _, ephemeral(4));

    let req = Request::Plan(small_plan_request());
    let responses = client::burst(&addr, &req, 8);
    let mut labels = Vec::new();
    for resp in responses {
        let Response::Plan { cache, .. } = resp.expect("transport") else {
            panic!("expected a plan response");
        };
        labels.push(cache);
    }
    assert_eq!(
        labels.iter().filter(|l| l.as_str() == "miss").count(),
        1,
        "exactly one request computed: {labels:?}"
    );
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits() + cache.coalesced(), 7);

    handle.stop();
    join.join().expect("server thread");

    // The trace proves it: 8 received/completed, 7 cache-hit events.
    let events = ring.events();
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
    assert_eq!(count("RequestReceived"), 8);
    assert_eq!(count("RequestCompleted"), 8);
    assert_eq!(count("CacheHit"), 7);
    assert!(events.iter().all(|e| match e {
        Event::RequestCompleted { ok, .. } => *ok,
        _ => true,
    }));
}

#[test]
fn server_reuses_one_search_pool_across_requests() {
    // The persistent-pool acceptance bar: distinct plan requests (each a
    // cache miss, each running a real parallel search) must all dispatch
    // onto the *same* resident pool — one `pool_id` for the server's
    // whole lifetime, with monotonically increasing `search_seq`. A
    // scoped-thread spawn per request would emit no such events at all.
    let ring = Arc::new(RingRecorder::new(TraceLevel::Summary, 256));
    let (addr, cache, handle, join) = start(Arc::clone(&ring) as _, ephemeral(2));

    for i in 0..3 {
        let mut req = small_plan_request();
        // threads > 1 forces the parallel (pooled) dispatch even on a
        // single-core CI runner; distinct deadlines defeat the cache.
        req.threads = 4;
        req.deadline_factor = 1.5 + 0.25 * f64::from(i);
        let resp = client::call(&addr, &Request::Plan(req)).expect("call");
        assert!(matches!(resp, Response::Plan { .. }), "got {resp:?}");
    }
    handle.stop();
    join.join().expect("server thread");
    assert_eq!(cache.misses(), 3, "each request must run its own search");

    let pool_events: Vec<(u64, u64, u32)> = ring
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::SearchPoolUsed {
                pool_id,
                search_seq,
                jobs,
                ..
            } => Some((*pool_id, *search_seq, *jobs)),
            _ => None,
        })
        .collect();
    assert_eq!(
        pool_events.len(),
        3,
        "every search must dispatch onto the pool: {pool_events:?}"
    );
    let first_pool = pool_events[0].0;
    assert!(
        pool_events.iter().all(|(id, _, _)| *id == first_pool),
        "searches crossed pools (threads were respawned): {pool_events:?}"
    );
    assert!(
        pool_events.windows(2).all(|w| w[0].1 < w[1].1),
        "search_seq must increase across requests: {pool_events:?}"
    );
    assert!(
        pool_events.iter().all(|(_, _, jobs)| *jobs == 4),
        "the request's thread count decides the work split: {pool_events:?}"
    );
}

#[test]
fn tenants_share_the_plan_cache() {
    let (addr, cache, handle, join) = start(Arc::new(NullRecorder), ephemeral(2));
    let mut a = small_plan_request();
    a.tenant = "team-a".into();
    let mut b = small_plan_request();
    b.tenant = "team-b".into();
    let ra = client::call(&addr, &Request::Plan(a)).expect("call");
    let rb = client::call(&addr, &Request::Plan(b)).expect("call");
    handle.stop();
    join.join().expect("server thread");

    let (
        Response::Plan { report: pa, .. },
        Response::Plan {
            report: pb,
            cache: label,
            ..
        },
    ) = (ra, rb)
    else {
        panic!("expected plan responses");
    };
    assert_eq!(pa, pb, "same problem, same plan, regardless of tenant");
    assert_eq!(label, "hit", "second tenant reuses the first's search");
    assert_eq!((cache.misses(), cache.hits()), (1, 1));
}

#[test]
fn replay_over_the_wire_matches_the_in_process_path() {
    let req = ReplayRequest {
        plan: small_plan_request(),
        replicas: 4,
        ..Default::default()
    };
    let local = market(42, 100.0);
    let want = service::replay(&local, &req, &NullRecorder).expect("replay");

    let (addr, _, handle, join) = start(Arc::new(NullRecorder), ephemeral(2));
    let resp = client::call(&addr, &Request::Replay(req)).expect("call");
    handle.stop();
    join.join().expect("server thread");

    let Response::Replay { report, .. } = resp else {
        panic!("expected a replay response, got {resp:?}");
    };
    assert_eq!(report, want);
}

#[test]
fn invalid_arguments_come_back_as_typed_errors() {
    let (addr, _, handle, join) = start(Arc::new(NullRecorder), ephemeral(1));
    let mut bad = small_plan_request();
    bad.strategy = "magic".into();
    let resp = client::call(&addr, &Request::Plan(bad)).expect("call");
    handle.stop();
    join.join().expect("server thread");

    let Response::Error { kind, message, .. } = resp else {
        panic!("expected a typed error, got {resp:?}");
    };
    assert_eq!(kind, "invalid-argument");
    assert!(message.contains("unknown strategy"), "{message}");
}

#[test]
fn overload_sheds_with_typed_responses_and_still_drains() {
    // One slow worker (300 ms per request), a one-slot queue, no
    // batching: a burst of 6 must shed most connections with typed
    // `Overloaded` frames while the admitted ones still complete.
    let ring = Arc::new(RingRecorder::new(TraceLevel::Summary, 256));
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 1,
        batch: 1,
        pause_ms: 300,
        max_requests: Some(6),
        ..Default::default()
    };
    let (addr, _, _handle, join) = start(Arc::clone(&ring) as _, config);

    let req = Request::Plan(small_plan_request());
    let responses = client::burst(&addr, &req, 6);
    let mut plans = 0;
    let mut shed = 0;
    for resp in responses {
        match resp.expect("transport") {
            Response::Plan { .. } => plans += 1,
            Response::Overloaded {
                queue_depth,
                capacity,
                ..
            } => {
                assert_eq!(capacity, 1);
                assert!(queue_depth >= 1);
                shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(plans + shed, 6);
    assert!(plans >= 1, "at least the first admitted request completes");
    assert!(shed >= 3, "a one-slot queue must shed most of a 6-burst");

    // `max_requests: 6` makes serve() return once the burst is accepted
    // and drained — reaching this join IS the no-deadlock assertion.
    let stats = join.join().expect("server thread");
    assert_eq!(stats.accepted, 6);
    assert_eq!(stats.shed as usize, shed);

    let events = ring.events();
    let shed_events = events.iter().filter(|e| e.kind() == "RequestShed").count();
    assert_eq!(shed_events, shed);
}
