//! Offline shim of the `rand` API subset this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `rand`'s `StdRng`, but the workspace only relies on
//! determinism per seed and statistical quality, never on specific values.

pub mod rngs {
    /// Deterministic 64-bit PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, the
        // standard recommendation from the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from all bit patterns (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range: {self:?}");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range: {lo}..={hi}");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); span ≪ 2^64 in practice.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// The user-facing sampling surface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_unit_interval_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let k = rng.gen_range(0usize..10);
            assert!(k < 10);
            let j = rng.gen_range(2.0f64..=3.0);
            assert!((2.0..=3.0).contains(&j));
        }
    }
}
