//! Offline shim of the `criterion` API subset this workspace's benches
//! use: `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`/`sample_size`, and
//! `Bencher::iter`.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and reports
//! mean / min / max wall time per iteration to stdout. That is enough to
//! compare configurations (the only use benches in this repo make of
//! criterion) without the upstream dependency tree.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter (group name supplies the function part).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measure `f`, one sample at a time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-sample iteration sizing: aim for samples of at
        // least ~1 ms so Instant overhead is negligible.
        let warm_start = Instant::now();
        black_box(f());
        let once = warm_start.elapsed();
        let iters = self.iters_per_sample.max(
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64,
        );
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{label:<50} time: [{} {} {}]",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size.max(1)),
        iters_per_sample: 1,
    };
    f(&mut b);
    b.report(label);
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; a user may pass a filter. The
            // shim runs everything regardless.
            $( $group(); )+
        }
    };
}
