//! Offline shim of the `crossbeam` API subset this workspace uses:
//! `crossbeam::thread::scope` with spawn/join, implemented on top of
//! `std::thread::scope` (available since Rust 1.63, which makes the
//! upstream dependency unnecessary for this codebase).

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the closure given to [`scope`] and to every
    /// spawned closure (crossbeam's signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result, `Err` on panic.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives the scope handle,
        /// as with crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned.
    ///
    /// Unlike crossbeam, a panicking un-joined child propagates as a panic
    /// (std semantics) instead of an `Err`; every caller in this workspace
    /// joins its children and treats `Err` as fatal, so the difference is
    /// unobservable here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
