//! Offline shim of the `proptest` API subset this workspace uses.
//!
//! Provides the [`proptest!`] macro, range and `prop_map`/`collection::vec`
//! strategies, and `prop_assert*` macros. Unlike upstream proptest there is
//! no shrinking: a failing case panics with the generated inputs printed,
//! which is enough for the deterministic, seed-stable test suites here.
//! Inputs are derived from a per-test deterministic RNG (hash of the test
//! path + case index), so failures are reproducible run to run.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property this many times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h = DefaultHasher::new();
        test_path.hash(&mut h);
        case.hash(&mut h);
        TestRng {
            state: h.finish() | 1,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-`clone` strategy (`Just` in upstream proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        v.min(self.end - (self.end - self.start) * 1e-12)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i64, i32);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let len = self.size.start + rng.below(self.size.end - self.size.start);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of upstream's `prop::...` paths.
pub mod prop {
    pub use crate::collection;
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($a, $b $(, $($fmt)*)?);
    };
}

/// Define property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..1.0).prop_map(|x| (x, 1.0 - x))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, n in 1usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn mapped_strategies_apply(p in pair()) {
            prop_assert!((p.0 + p.1 - 1.0).abs() < 1e-12);
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
