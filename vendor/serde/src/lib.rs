//! Offline shim of the `serde` API subset this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, self-contained implementation of the pieces of the
//! serde ecosystem it actually exercises: `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, plus JSON round-tripping
//! through `serde_json`. Instead of serde's visitor architecture, both
//! traits go through one in-memory [`Value`] tree; the derive macro in
//! `serde_derive` generates `to_value`/`from_value` implementations that
//! mirror serde's external JSON representation (unit variants as strings,
//! newtype/struct variants as single-key objects).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// In-memory data tree shared by serialization and deserialization.
///
/// Mirrors the JSON data model; numbers are `f64` (every numeric type in
/// this workspace round-trips losslessly through it at the magnitudes the
/// tests exercise).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, like serde_json).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup for objects; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Field access for derived deserialization: missing fields read as
    /// `Null` so `Option<T>` fields tolerate omission (as serde does).
    pub fn field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }

    /// `Some(f64)` when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// `Some(&str)` when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(bool)` when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(u64)` when this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Arr(_))
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Obj(_))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.field(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Arr(items) => items.get(i).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialize out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::msg(format!(
                        "expected number for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(*self)
        } else {
            Value::Null // serde_json serializes non-finite floats as null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(*n),
            Value::Null => Ok(f64::NAN), // partner of the null-for-non-finite encoding
            other => Err(DeError::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::msg(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

// Maps encode as arrays of [key, value] pairs: struct keys (used by this
// workspace) have no canonical string form, and nothing external consumes
// the JSON, so self-consistent round-tripping is the only requirement.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(<(K, V)>::from_value).collect(),
            other => Err(DeError::msg(format!("expected map array, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx; // positional
                                $name::from_value(
                                    it.next().ok_or_else(|| DeError::msg("tuple too short"))?,
                                )?
                            },
                        )+))
                    }
                    other => Err(DeError::msg(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}
