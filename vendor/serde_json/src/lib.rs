//! Offline shim of the `serde_json` API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`json!`], and
//! [`Value`] (re-exported from the vendored `serde`, where it doubles as
//! the serialization data model).
//!
//! The writer emits numbers with Rust's shortest-round-trip float
//! formatting, so `T → string → T` round-trips are exact for every finite
//! value; non-finite floats serialize as `null` (serde_json-compatible).

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialization error (kept for API compatibility; the shim writer is
/// infallible).
pub type Error = DeError;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::msg(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_value(&v)
}

/// Build a [`Value`] in place, `serde_json::json!`-style.
///
/// Supports the forms this workspace uses: object literals with
/// expression values, array literals, and plain expressions (anything
/// implementing the shim's `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Arr(::std::vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Obj(::std::vec![
            $( (::std::string::String::from($key), $crate::json!($value)) ),*
        ])
    };
    ($other:expr) => {
        ::serde::Serialize::to_value(&$other)
    };
}

// ----------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(
            out,
            indent,
            depth,
            '[',
            ']',
            items.iter(),
            |out, item, d| write_value(out, item, indent, d),
        ),
        Value::Obj(fields) => write_seq(
            out,
            indent,
            depth,
            '{',
            '}',
            fields.iter(),
            |out, (k, val), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * (depth + 1) {
                out.push(' ');
            }
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * depth {
                out.push(' ');
            }
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's Display for f64 is shortest-round-trip.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(_) => self.parse_number(),
            None => Err(DeError::msg("unexpected end of JSON input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(DeError::msg(format!(
                "invalid literal at byte {} of JSON input",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("non-UTF8 number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| DeError::msg(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(DeError::msg("unterminated JSON string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| DeError::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::msg("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(DeError::msg("bad escape in JSON string")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| DeError::msg("non-UTF8 JSON string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = json!({
            "a": 1.5,
            "b": [1, 2, 3],
            "c": "hi \"there\"",
            "d": true,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["a"].as_f64(), Some(1.5));
        assert!(back["b"].is_array());
    }

    #[test]
    fn pretty_output_parses_back() {
        let inner = json!({"inner": [0.25, -3.0]});
        let v = json!({ "outer": inner });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn shortest_roundtrip_floats_are_exact() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(x, back);
    }
}
