//! Derive macros for the vendored serde shim.
//!
//! Parses the deriving item directly from the token stream (no `syn` —
//! the build environment is offline) and generates `to_value` /
//! `from_value` impls against `::serde::{Serialize, Deserialize, Value,
//! DeError}`. Supported shapes — the only ones this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype serialization for one field, array otherwise),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (serde's external
//!   representation: `"Variant"`, `{"Variant": inner}`).
//!
//! The only `#[serde(...)]` helper attributes supported are
//! `#[serde(default)]` and `#[serde(default = "path")]` on *named* fields
//! (struct or enum-struct-variant): on deserialization a missing (or
//! explicitly null) field takes `Default::default()` / `path()` instead of
//! erroring, which is what lets newer event schemas read older traces.
//! Generic types and every other serde attribute are intentionally not
//! supported; the macro panics on them so misuse fails loudly at compile
//! time rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a named field fills in when the key is absent from the input.
enum DefaultKind {
    /// `#[serde(default)]` → `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]` → `path()`.
    Path(String),
}

struct NamedField {
    name: String,
    default: Option<DefaultKind>,
}

/// One parsed field: its name (named fields) or index (tuple fields).
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

/// Advance past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// `a: T, pub b: U, ...` → named fields, honoring `#[serde(default)]`.
fn parse_named_fields(body: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = take_field_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other}"),
        };
        i += 1; // name
        i += 1; // `:`
        skip_type_until_comma(&tokens, &mut i);
        fields.push(NamedField { name, default });
    }
    fields
}

/// Like [`skip_attrs_and_vis`], but extracts a `#[serde(default)]` /
/// `#[serde(default = "path")]` marker from the attributes it skips.
fn take_field_attrs(tokens: &[TokenTree], i: &mut usize) -> Option<DefaultKind> {
    let mut default = None;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if let Some(kind) = parse_serde_default(g.stream()) {
                        default = Some(kind);
                    }
                }
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return default,
        }
    }
}

/// Inspect one attribute's bracket content. Returns the default marker for
/// `serde(default)` / `serde(default = "path")`, `None` for non-serde
/// attributes (doc comments etc.), and panics on any other serde attribute.
fn parse_serde_default(attr: TokenStream) -> Option<DefaultKind> {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match inner.first() {
                Some(TokenTree::Ident(id)) if id.to_string() == "default" => {
                    if inner.len() == 1 {
                        Some(DefaultKind::Trait)
                    } else {
                        match (inner.get(1), inner.get(2)) {
                            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                                if eq.as_char() == '=' && inner.len() == 3 =>
                            {
                                let quoted = lit.to_string();
                                let path = quoted
                                    .strip_prefix('"')
                                    .and_then(|s| s.strip_suffix('"'))
                                    .unwrap_or_else(|| {
                                        panic!(
                                            "serde shim derive: `default = {quoted}` must be a \
                                             string literal naming a function"
                                        )
                                    });
                                Some(DefaultKind::Path(path.to_string()))
                            }
                            _ => panic!(
                                "serde shim derive: malformed `#[serde(default ...)]` attribute"
                            ),
                        }
                    }
                }
                other => panic!(
                    "serde shim derive: unsupported serde attribute {other:?} \
                     (only `default` / `default = \"path\"` are implemented)"
                ),
            }
        }
        _ => None,
    }
}

/// Skip a type (plus the trailing comma); commas nested in `<...>` or
/// groups don't terminate.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type_until_comma(&tokens, &mut i);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip a possible discriminant and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from(\"{key}\"), {value_expr})")
}

/// Deserialization initializer for one named field. A field with a
/// `#[serde(default)]` marker substitutes its default when the key is
/// missing (`Value::field` yields `Null` for absent keys) instead of
/// bubbling a decode error — everything else decodes strictly.
fn named_field_init(f: &NamedField, obj_expr: &str) -> String {
    let n = &f.name;
    match &f.default {
        None => format!("{n}: ::serde::Deserialize::from_value({obj_expr}.field(\"{n}\"))?"),
        Some(kind) => {
            let default_expr = match kind {
                DefaultKind::Trait => "::std::default::Default::default()".to_string(),
                DefaultKind::Path(path) => format!("{path}()"),
            };
            format!(
                "{n}: match {obj_expr}.field(\"{n}\") {{\n\
                     ::serde::Value::Null => {default_expr},\n\
                     present => ::serde::Deserialize::from_value(present)?,\n\
                 }}"
            )
        }
    }
}

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    let n = &f.name;
                    obj_entry(n, &format!("::serde::Serialize::to_value(&self.{n})"))
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names.iter().map(|f| named_field_init(f, "v")).collect();
            format!(
                "if !v.is_object() {{\n\
                     return ::std::result::Result::Err(::serde::DeError::msg(\n\
                         ::std::format!(\"expected object for {name}, got {{v:?}}\")));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&v[{i}usize])?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let _ = v;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_value(f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Obj(::std::vec![{}]),",
                        binds.join(", "),
                        obj_entry(vn, &inner)
                    )
                }
                Fields::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let n = &f.name;
                            obj_entry(n, &format!("::serde::Serialize::to_value({n})"))
                        })
                        .collect();
                    let inner = format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "));
                    let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                    format!(
                        "{name}::{vn} {{ {} }} => ::serde::Value::Obj(::std::vec![{}]),",
                        binds.join(", "),
                        obj_entry(vn, &inner)
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join("\n")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push(format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
            )),
            Fields::Tuple(n) => {
                let init = if *n == 1 {
                    format!("{name}::{vn}(::serde::Deserialize::from_value(inner)?)")
                } else {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&inner[{i}usize])?"))
                        .collect();
                    format!("{name}::{vn}({})", items.join(", "))
                };
                data_arms.push(format!("\"{vn}\" => ::std::result::Result::Ok({init}),"));
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| named_field_init(f, "inner"))
                    .collect();
                data_arms.push(format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                    inits.join(", ")
                ));
            }
        }
    }
    let err = format!(
        "::std::result::Result::Err(::serde::DeError::msg(\
             ::std::format!(\"unexpected value for enum {name}: {{v:?}}\")))"
    );
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         _ => {err},\n\
                     }},\n\
                     ::serde::Value::Obj(fields) if fields.len() == 1 => {{\n\
                         let (key, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match key.as_str() {{\n\
                             {data}\n\
                             _ => {err},\n\
                         }}\n\
                     }}\n\
                     _ => {err},\n\
                 }}\n\
             }}\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}
