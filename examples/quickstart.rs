//! Quickstart: optimize and execute one MPI job on a simulated EC2 spot
//! market.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The pipeline, end to end:
//! 1. build the 2014-calibrated market (5 instance types × 3 zones),
//! 2. profile an NPB BT (CLASS B, 128 processes) workload,
//! 3. let SOMPI choose circle groups, bid prices and checkpoint intervals
//!    under a deadline,
//! 4. replay the plan against the realized spot prices and compare the
//!    bill with the pure on-demand baseline.

use ec2_market::instance::InstanceCatalog;
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::PlanRunner;
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{OnDemandOnly, Sompi, Strategy};
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;

fn main() {
    // 1. Market: two weeks of synthetic spot history, deterministic seed.
    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    let market = SpotMarket::generate(
        catalog,
        &TraceGenerator::new(profile, 42),
        336.0,
        1.0 / 12.0,
    );

    // 2. Application: BT.B on 128 ranks, repeated 200x (the paper scales
    //    each kernel to a long-running job this way).
    let app = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(200);
    println!("application: {} ({} processes)", app.name, app.processes);

    // 3. Problem: deadline 1.5x the fastest on-demand execution.
    let mut problem = Problem::build(&market, &app, f64::MAX, None, S3Store::paper_2014());
    problem.deadline = problem.baseline_time() * 1.5;
    println!(
        "baseline: {:.2} h on {} (${:.2} billed), deadline {:.2} h",
        problem.baseline_time(),
        market.catalog().get(problem.baseline().instance_type).name,
        problem.baseline_cost_billed(),
        problem.deadline
    );

    // 4. Optimize against the first two days of history.
    let view = MarketView::from_market(&market, 0.0, 48.0);
    let sompi = Sompi {
        config: OptimizerConfig::default(),
    };
    let plan = sompi
        .plan(&problem, &view, &mut PlanContext::new())
        .expect("plan succeeds");
    println!(
        "\nSOMPI plan ({} circle groups):",
        plan.replication_degree()
    );
    for (group, decision) in &plan.groups {
        let ty = market.instance_type(group.id);
        println!(
            "  {} x{:<3} bid ${:.4}/h  checkpoint every {:.2} h  (T_i = {:.2} h)",
            ty.name, group.instances, decision.bid, decision.ckpt_interval, group.exec_hours
        );
    }
    println!(
        "  on-demand fallback: {} x{}",
        market.catalog().get(plan.on_demand.instance_type).name,
        plan.on_demand.instances
    );

    // 5. Replay against the realized market from a few start offsets.
    let runner = PlanRunner::new(&market, problem.deadline);
    let od_plan = OnDemandOnly
        .plan(&problem, &view, &mut PlanContext::new())
        .expect("plan succeeds");
    println!("\nreplay (start offset -> SOMPI bill vs on-demand bill):");
    let mut sompi_total = 0.0;
    let mut od_total = 0.0;
    for i in 0..5 {
        let start = 60.0 + i as f64 * 50.0;
        let ctx = replay::ExecContext::new();
        let s = runner.run(&plan, start, &ctx).expect("replay succeeds");
        let o = runner.run(&od_plan, start, &ctx).expect("replay succeeds");
        sompi_total += s.total_cost;
        od_total += o.total_cost;
        println!(
            "  t={:>5.1} h   ${:>6.2} ({}, {:.2} h)   vs ${:>6.2}",
            start,
            s.total_cost,
            if s.met_deadline { "met" } else { "missed" },
            s.wall_hours,
            o.total_cost,
        );
    }
    println!(
        "\naverage saving vs on-demand: {:.0}%",
        (1.0 - sompi_total / od_total) * 100.0
    );
}
