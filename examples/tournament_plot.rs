//! Render a tournament report as a per-policy cost table and ASCII
//! chart — the quick-look companion to `sompi tournament --json`.
//!
//! ```bash
//! # Render a saved report:
//! sompi tournament --smoke --json > report.json
//! cargo run --release --example tournament_plot report.json
//!
//! # Or run a small tournament in-process and render it:
//! cargo run --release --example tournament_plot
//! ```
//!
//! Each policy's cells (market × fault-plan grid) are averaged into one
//! row; the bar chart plots mean normalized cost (realized cost over the
//! billed on-demand baseline — lower is better, 1.00 is "you may as
//! well have bought on-demand"). The footer reports how many replays
//! the cross-cell memo deduplicated.

use sompi_obs::NullRecorder;
use sompi_server::proto::PlanRequest;
use sompi_server::tournament::{run_tournament, TournamentConfig, TournamentReport};
use std::collections::BTreeMap;

fn load_or_run() -> TournamentReport {
    match std::env::args().nth(1) {
        Some(path) => {
            let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
            serde_json::from_str(&raw).unwrap_or_else(|e| panic!("parse {path}: {e}"))
        }
        None => {
            eprintln!("(no report given — running a small in-process tournament)");
            let cfg = TournamentConfig {
                policies: vec![
                    "ondemand".into(),
                    "no-ft".into(),
                    "ckpt-only".into(),
                    "app-centric".into(),
                    "deadline-hedge".into(),
                    "sompi".into(),
                ],
                market_seeds: vec![21, 22],
                market_hours: 150.0,
                replicas: 8,
                fault_specs: vec![None, Some("storm=0.02x0.5".into())],
                plan: PlanRequest {
                    repeats: 50,
                    kappa: 1,
                    bid_levels: 2,
                    ..Default::default()
                },
                ..Default::default()
            };
            run_tournament(&cfg, &NullRecorder, None).expect("tournament runs")
        }
    }
}

/// Per-policy averages over the market × fault-plan grid, in first-seen
/// roster order.
struct PolicyRow {
    order: usize,
    cells: usize,
    norm_cost: f64,
    miss_rate: f64,
    spot_rate: f64,
    failures: f64,
}

fn main() {
    let report = load_or_run();
    let mut rows: BTreeMap<String, PolicyRow> = BTreeMap::new();
    for cell in &report.cells {
        let next = rows.len();
        let row = rows.entry(cell.policy.clone()).or_insert(PolicyRow {
            order: next,
            cells: 0,
            norm_cost: 0.0,
            miss_rate: 0.0,
            spot_rate: 0.0,
            failures: 0.0,
        });
        row.cells += 1;
        row.norm_cost += cell.normalized_cost;
        row.miss_rate += cell.deadline_miss_rate;
        row.spot_rate += cell.spot_finish_rate;
        row.failures += cell.mean_failures;
    }
    let mut ordered: Vec<(&String, &PolicyRow)> = rows.iter().collect();
    ordered.sort_by_key(|(_, r)| r.order);

    let grid = report.cells.len() / rows.len().max(1);
    println!(
        "{} policies x {grid} cells each ({} cells total)\n",
        rows.len(),
        report.cells.len()
    );
    println!(
        "{:<16} {:>10} {:>9} {:>9} {:>9}",
        "policy", "norm cost", "miss %", "spot %", "kills"
    );
    for (name, r) in &ordered {
        let n = r.cells as f64;
        println!(
            "{:<16} {:>10.3} {:>8.0}% {:>8.0}% {:>9.2}",
            name,
            r.norm_cost / n,
            r.miss_rate / n * 100.0,
            r.spot_rate / n * 100.0,
            r.failures / n
        );
    }

    // ASCII chart: one bar per policy, scaled to the worst mean cost.
    let worst = ordered
        .iter()
        .map(|(_, r)| r.norm_cost / r.cells as f64)
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    println!("\nmean normalized cost (lower is better):");
    for (name, r) in &ordered {
        let mean = r.norm_cost / r.cells as f64;
        let width = ((mean / worst) * 48.0).round() as usize;
        println!("{:<16} {} {:.3}", name, "#".repeat(width.max(1)), mean);
    }

    if report.replay_memo_hits + report.replay_memo_misses > 0 {
        println!(
            "\nreplay memo: {} of {} cell replays served from identical-plan cells",
            report.replay_memo_hits,
            report.replay_memo_hits + report.replay_memo_misses
        );
    }
}
