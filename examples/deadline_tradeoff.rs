//! How much does urgency cost? Sweep the deadline for one application and
//! print the cost/deadline frontier plus the instance-type mix SOMPI picks
//! at each point (the paper's Figure 7 scenario, as a user would consume
//! it).
//!
//! ```bash
//! cargo run --release --example deadline_tradeoff [BT|SP|LU|FT|IS|BTIO]
//! ```

use ec2_market::instance::InstanceCatalog;
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::PlanRunner;
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;

fn main() {
    let kernel = match std::env::args().nth(1).as_deref() {
        Some("SP") => NpbKernel::Sp,
        Some("LU") => NpbKernel::Lu,
        Some("FT") => NpbKernel::Ft,
        Some("IS") => NpbKernel::Is,
        Some("BTIO") => NpbKernel::Btio,
        _ => NpbKernel::Bt,
    };

    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    let market = SpotMarket::generate(catalog, &TraceGenerator::new(profile, 7), 400.0, 1.0 / 12.0);
    let app = kernel.profile(NpbClass::B, 128).repeated(200);
    let view = MarketView::from_market(&market, 0.0, 48.0);
    let sompi = Sompi {
        config: OptimizerConfig::default(),
    };

    let base = Problem::build(&market, &app, f64::MAX, None, S3Store::paper_2014());
    println!(
        "{}: baseline {:.2} h / ${:.2} billed on {}\n",
        app.name,
        base.baseline_time(),
        base.baseline_cost_billed(),
        market.catalog().get(base.baseline().instance_type).name
    );
    println!(
        "{:<10} {:>10} {:>8} {:>8}  spot mix",
        "deadline", "avg bill", "saving", "met"
    );
    for headroom in [0.05, 0.10, 0.20, 0.35, 0.50, 0.75, 1.00] {
        let mut problem = base.clone();
        problem.deadline = base.baseline_time() * (1.0 + headroom);
        let plan = sompi
            .plan(&problem, &view, &mut PlanContext::new())
            .expect("plan succeeds");
        let runner = PlanRunner::new(&market, problem.deadline);
        let mut total = 0.0;
        let mut met = 0;
        let n = 12;
        for i in 0..n {
            let out = runner
                .run(&plan, 50.0 + i as f64 * 25.0, &replay::ExecContext::new())
                .expect("replay succeeds");
            total += out.total_cost;
            met += out.met_deadline as usize;
        }
        let avg = total / n as f64;
        let mut mix: Vec<String> = plan
            .groups
            .iter()
            .map(|(g, _)| market.instance_type(g.id).name.clone())
            .collect();
        mix.sort();
        mix.dedup();
        println!(
            "+{:<8} {:>9.2}$ {:>7.0}% {:>7}/{n}  {}",
            format!("{:.0}%", headroom * 100.0),
            avg,
            (1.0 - avg / base.baseline_cost_billed()) * 100.0,
            met,
            mix.join(",")
        );
    }
    println!("\nLooser deadlines let SOMPI shift from the fast expensive types to");
    println!("slow cheap ones — the staircase of the paper's Figure 7.");
}
