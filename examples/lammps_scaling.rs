//! Strong-scaling a real application: LAMMPS at 32–256 processes on a
//! fixed problem size (the paper's Section 5.3.1 real-world study).
//!
//! As the process count grows, per-rank work shrinks while the halo
//! surface and per-step latency don't — the run turns from
//! computation-intensive into communication-intensive, and SOMPI's
//! instance choice flips from cheap m1 fleets to cc2.8xlarge.
//!
//! ```bash
//! cargo run --release --example lammps_scaling
//! ```

use ec2_market::instance::InstanceCatalog;
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::cluster::ClusterSpec;
use mpi_sim::lammps::Lammps;
use mpi_sim::storage::S3Store;
use replay::PlanRunner;
use sompi_core::adaptive::PlanContext;
use sompi_core::baselines::{Sompi, Strategy};
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;

fn main() {
    let catalog = InstanceCatalog::paper_2014();
    let prof = MarketProfile::paper_2014(&catalog);
    let market = SpotMarket::generate(catalog, &TraceGenerator::new(prof, 99), 400.0, 1.0 / 12.0);
    let lammps = Lammps::paper();
    let view = MarketView::from_market(&market, 0.0, 48.0);
    let sompi = Sompi {
        config: OptimizerConfig::default(),
    };

    println!(
        "LAMMPS melt: {} atoms, {} timesteps, fixed problem size\n",
        lammps.atoms, lammps.timesteps
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>9}  spot mix",
        "procs", "comm frac", "baseline", "avg bill", "saving"
    );

    for procs in [32u32, 64, 128, 256] {
        let app = lammps.profile(procs).repeated(20);
        // Communication share on the m1.small fleet (1 rank/instance).
        let cat = market.catalog();
        let small = cat.by_name("m1.small").unwrap();
        let breakdown = ClusterSpec::for_processes(cat, small, procs).estimate(cat, &app);

        let mut problem = Problem::build(&market, &app, f64::MAX, None, S3Store::paper_2014());
        problem.deadline = problem.baseline_time() * 1.5;
        let plan = sompi
            .plan(&problem, &view, &mut PlanContext::new())
            .expect("plan succeeds");
        let runner = PlanRunner::new(&market, problem.deadline);
        let mut total = 0.0;
        let n = 10;
        for i in 0..n {
            total += runner
                .run(&plan, 50.0 + 30.0 * i as f64, &replay::ExecContext::new())
                .expect("replay succeeds")
                .total_cost;
        }
        let avg = total / n as f64;
        let mut mix: Vec<String> = plan
            .groups
            .iter()
            .map(|(g, _)| market.instance_type(g.id).name.clone())
            .collect();
        mix.sort();
        mix.dedup();
        println!(
            "{procs:>6} {:>9.0}% {:>8.2} h {:>9.2}$ {:>8.0}%  {}",
            breakdown.comm_fraction() * 100.0,
            problem.baseline_time(),
            avg,
            (1.0 - avg / problem.baseline_cost_billed()) * 100.0,
            mix.join(",")
        );
    }
    println!("\nThe communication share climbs with the process count; once it");
    println!("dominates, only cc2.8xlarge (10 GbE + shared memory) is competitive");
    println!("and the cost reduction shrinks — the paper's LAMMPS observation.");
}
