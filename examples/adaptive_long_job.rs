//! A long job on a drifting market: Algorithm 1's windowed adaptation,
//! window by window.
//!
//! A ~24-hour BT workload executes on a non-stationary market whose price
//! levels re-roll every ~100 hours. Every `T_m = 10` hours the adaptive
//! optimizer re-estimates failure rates from the freshest history and
//! re-plans the residual work; durable progress (the best checkpoint,
//! held in the S3 model) carries across windows.
//!
//! ```bash
//! cargo run --release --example adaptive_long_job
//! ```

use ec2_market::instance::InstanceCatalog;
use ec2_market::market::SpotMarket;
use ec2_market::trace::SpotTrace;
use ec2_market::tracegen::{TraceGenConfig, ZoneVolatility};
use ec2_market::zone::AvailabilityZone;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use replay::adaptive_exec::AdaptiveRunner;
use sompi_core::adaptive::AdaptiveConfig;
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;

/// Non-stationary market: 100-hour segments with re-rolled price levels.
fn drifting_market() -> SpotMarket {
    let catalog = InstanceCatalog::paper_2014();
    let mut market = SpotMarket::new(catalog.clone());
    let levels = [1.0, 1.8, 0.7, 1.3, 2.0, 0.9];
    for (id, ty) in catalog.iter() {
        for (zi, zone) in AvailabilityZone::PAPER_ZONES.into_iter().enumerate() {
            let mut trace: Option<SpotTrace> = None;
            for (si, level) in levels.iter().enumerate() {
                let cfg = TraceGenConfig::preset(
                    ty.on_demand_price * 0.12 * level,
                    ZoneVolatility::Volatile,
                );
                let piece = cfg.generate(100.0, 1.0 / 12.0, (id.0 * 31 + zi * 7 + si) as u64);
                match &mut trace {
                    None => trace = Some(piece),
                    Some(t) => t.extend_from(&piece),
                }
            }
            market.insert(
                ec2_market::market::CircleGroupId::new(id, zone),
                trace.unwrap(),
            );
        }
    }
    market
}

fn main() {
    let market = drifting_market();
    let app = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(4000);
    let mut problem = Problem::build(&market, &app, f64::MAX, None, S3Store::paper_2014());
    problem.deadline = problem.baseline_time() * 1.5;
    println!(
        "job: {} — baseline {:.1} h, deadline {:.1} h\n",
        app.name,
        problem.baseline_time(),
        problem.deadline
    );

    let config = AdaptiveConfig {
        window_hours: 10.0,
        history_hours: 48.0,
        optimizer: OptimizerConfig {
            kappa: 3,
            bid_levels: 5,
            ..Default::default()
        },
        ..Default::default()
    };

    for (label, maintain) in [
        ("with update maintenance (SOMPI)", true),
        ("frozen plan (w/o-MT)", false),
    ] {
        let mut runner = AdaptiveRunner::new(&market, config);
        if !maintain {
            runner = runner.without_maintenance();
        }
        let mut costs = Vec::new();
        let mut met = 0;
        let n = 8;
        for i in 0..n {
            let out = runner
                .run(
                    &problem,
                    60.0 + i as f64 * 55.0,
                    &replay::ExecContext::new(),
                )
                .expect("adaptive run succeeds");
            costs.push(out.run.total_cost);
            met += out.run.met_deadline as usize;
        }
        let mean = costs.iter().sum::<f64>() / n as f64;
        let max = costs.iter().cloned().fold(0.0, f64::max);
        println!("{label}:");
        println!(
            "  mean bill ${mean:.2}  worst ${max:.2}  deadline met {met}/{n}  (baseline ${:.2})\n",
            problem.baseline_cost_billed()
        );
    }
    println!("On a drifting market the frozen plan keeps bidding against a price");
    println!("distribution that no longer exists; re-estimating every window keeps");
    println!("the bids and instance mix aligned with reality (Algorithm 1).");
}
