//! The MPI substrate up close: run an NPB kernel through the discrete-event
//! simulator, inject an out-of-bid failure, and watch coordinated
//! checkpointing bound the lost work.
//!
//! ```bash
//! cargo run --release --example mpi_checkpoint_demo
//! ```

use ec2_market::instance::InstanceCatalog;
use mpi_sim::checkpoint::CheckpointSpec;
use mpi_sim::cluster::ClusterSpec;
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::program::Program;
use mpi_sim::sim::Simulation;
use mpi_sim::storage::S3Store;

fn main() {
    let catalog = InstanceCatalog::paper_2014();
    let ty = catalog.by_name("m1.medium").unwrap();
    let app = NpbKernel::Bt.profile(NpbClass::B, 128).repeated(100);
    let cluster = ClusterSpec::for_processes(&catalog, ty, app.processes);
    let ckpt = CheckpointSpec::for_app(&catalog, &cluster, &app, S3Store::paper_2014());

    // Closed-form estimate vs discrete-event execution.
    let estimate = cluster.estimate(&catalog, &app);
    println!(
        "{} on {} x{}",
        app.name,
        catalog.get(ty).name,
        cluster.instances
    );
    println!(
        "  analytic estimate: {:.3} h  (compute {:.0}%, network {:.0}%, io {:.0}%)",
        estimate.total_hours(),
        (1.0 - estimate.comm_fraction() - estimate.io_fraction()) * 100.0,
        estimate.comm_fraction() * 100.0,
        estimate.io_fraction() * 100.0
    );
    println!(
        "  checkpoint: O = {:.1} s ({:.2} GB to S3), recovery R = {:.1} s",
        ckpt.overhead_hours() * 3600.0,
        ckpt.volume_gb,
        ckpt.recovery_hours() * 3600.0
    );

    let program = Program::from_profile(&app, 200);
    let sim = Simulation::new(&catalog, cluster, ckpt);

    let clean = sim.run(&program, None, None);
    println!("\nDES, failure-free, no checkpoints:");
    println!(
        "  wall {:.3} h (vs analytic {:.3} h)",
        clean.wall_hours,
        estimate.total_hours()
    );

    let failure_at = clean.wall_hours * 0.7;
    println!("\nout-of-bid event injected at {failure_at:.3} h:");
    for interval in [
        None,
        Some(clean.wall_hours / 4.0),
        Some(clean.wall_hours / 20.0),
    ] {
        let out = sim.run(&program, interval, Some(failure_at));
        let label = match interval {
            None => "no checkpoints ".to_string(),
            Some(f) => format!("F = {:.2} h     ", f),
        };
        println!(
            "  {label} -> {} checkpoints, {:.3} h of progress survives, {:.3} h lost",
            out.checkpoints_taken,
            out.saved_progress_hours,
            out.productive_hours - out.saved_progress_hours
        );
    }
    println!("\nShorter intervals save more work per failure but cost more overhead —");
    println!("the trade-off SOMPI's phi(P) resolves per bid price (Young/Daly).");
}
