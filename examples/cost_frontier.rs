//! The whole cost/deadline trade-off in one search: the Pareto frontier of
//! `(E[Time], E[Cost])` plans for an application, without fixing a
//! deadline up front.
//!
//! ```bash
//! cargo run --release --example cost_frontier [BT|SP|LU|FT|IS|BTIO]
//! ```

use ec2_market::instance::InstanceCatalog;
use ec2_market::market::SpotMarket;
use ec2_market::tracegen::{MarketProfile, TraceGenerator};
use mpi_sim::npb::{NpbClass, NpbKernel};
use mpi_sim::storage::S3Store;
use sompi_core::pareto::frontier;
use sompi_core::problem::Problem;
use sompi_core::twolevel::OptimizerConfig;
use sompi_core::view::MarketView;

fn main() {
    let kernel = match std::env::args().nth(1).as_deref() {
        Some("SP") => NpbKernel::Sp,
        Some("LU") => NpbKernel::Lu,
        Some("FT") => NpbKernel::Ft,
        Some("IS") => NpbKernel::Is,
        Some("BTIO") => NpbKernel::Btio,
        _ => NpbKernel::Bt,
    };
    let catalog = InstanceCatalog::paper_2014();
    let profile = MarketProfile::paper_2014(&catalog);
    let market = SpotMarket::generate(
        catalog,
        &TraceGenerator::new(profile, 17),
        200.0,
        1.0 / 12.0,
    );
    let app = kernel.profile(NpbClass::B, 128).repeated(200);
    let problem = Problem::build(&market, &app, f64::MAX, None, S3Store::paper_2014());
    let view = MarketView::from_market(&market, 0.0, 48.0);

    let points = frontier(
        &problem,
        &view,
        OptimizerConfig {
            kappa: 2,
            bid_levels: 6,
            ..Default::default()
        },
    );

    println!(
        "{}: {} non-dominated plans (baseline {:.2} h / ${:.2} billed)\n",
        app.name,
        points.len(),
        problem.baseline_time(),
        problem.baseline_cost_billed()
    );
    println!(
        "{:>10} {:>12} {:>10}  plan",
        "E[time] h", "E[cost] $", "vs base"
    );
    for p in &points {
        let mut types: Vec<String> = p
            .plan
            .groups
            .iter()
            .map(|(g, _)| market.instance_type(g.id).name.clone())
            .collect();
        types.sort();
        types.dedup();
        let desc = if types.is_empty() {
            "pure on-demand".to_string()
        } else {
            format!("spot[{}]", types.join(","))
        };
        println!(
            "{:>10.2} {:>12.2} {:>9.0}%  {desc}",
            p.evaluation.expected_time,
            p.evaluation.expected_cost,
            (1.0 - p.evaluation.expected_cost / problem.baseline_cost_billed()) * 100.0,
        );
    }
    println!("\nPick your deadline anywhere on the curve; every point is the");
    println!("cheapest plan achieving that expected completion time.");
}
