#!/usr/bin/env bash
# Regenerate every table/figure reproduction into results/.
# SOMPI_REPLICAS controls Monte-Carlo sample counts (default 100 here).
set -u
cd "$(dirname "$0")/.."
export SOMPI_REPLICAS="${SOMPI_REPLICAS:-100}"
BINS=(
  fig1_traces fig2_histograms fig4_failure_rate
  fig5_cost_comparison table2_exec_time fig6_heuristics
  fig7_deadline_sweep fig8_fault_tolerance
  param_slack param_kappa param_window
  accuracy_failure_rate accuracy_model
  ablation_search ablation_billing ablation_parallel ablation_prune
  ablation_warmstart
  ablation_kernel
  ablation_replay_index
  ablation_mc_batch
  ext_relaunch sensitivity_profiling
  tournament
)
cargo build --release -p sompi-bench || exit 1
for b in "${BINS[@]}"; do
  echo "=== $b (replicas=$SOMPI_REPLICAS) ==="
  ./target/release/"$b" > "results/$b.txt" 2>&1
  echo "    -> results/$b.txt ($?)"
done
